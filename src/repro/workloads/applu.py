"""110.applu — parabolic/elliptic PDE solver (31MB reference data set).

Three paper-documented behaviours are modeled:

* parallel loops of only **33 iterations**, so a blocked schedule leaves
  processors 11-15 idle at 16 CPUs (the load-imbalance example of
  Section 4.1);
* a 31MB data set that swamps a 1MB cache at any processor count —
  capacity misses dominate and CDPC gives no benefit — while at 4MB the
  per-processor footprint fits and CDPC gains appear (Figure 7);
* loop tiling introduced during parallelization that inhibits software
  pipelining of prefetches, plus large access strides that make prefetches
  reference unmapped TLB entries and get dropped (Section 6.2).
"""

from __future__ import annotations

from repro.compiler.ir import (
    ArrayDecl,
    Loop,
    LoopKind,
    Partitioning,
    PartitionedAccess,
    Phase,
    Program,
)
from repro.workloads.base import WorkloadModel

MB = 1024 * 1024
_ITER = 33  # iterations of the parallelized loops


def _blocked(name: str, write: bool = False, fraction: float = 1.0) -> PartitionedAccess:
    return PartitionedAccess(
        name,
        units=_ITER,
        is_write=write,
        partitioning=Partitioning.BLOCKED,
        fraction=fraction,
    )


def build(scale: int = 1) -> WorkloadModel:
    # 1548 pages per field (6.05MB): a 33x3 grid dimension leaves the
    # arrays slightly off the color-multiple sizes, so the page-coloring
    # baseline suffers clustered (not perfectly aligned) conflicts.
    field_bytes = 1548 * 4096 // scale
    arrays = (
        ArrayDecl("u", field_bytes),
        ArrayDecl("rsd", field_bytes),
        ArrayDecl("frct", field_bytes),
        ArrayDecl("flux", field_bytes),
        ArrayDecl("jac", field_bytes),
        ArrayDecl("coeff", 1 * MB // scale),
    )

    jacld = Loop(
        name="jacld_blts",
        kind=LoopKind.PARALLEL,
        accesses=(
            _blocked("u", fraction=0.95),
            _blocked("jac", write=True, fraction=0.95),
            _blocked("rsd", write=True, fraction=0.95),
        ),
        instructions_per_word=15.0,
        tiled=True,
    )
    rhs = Loop(
        name="rhs",
        kind=LoopKind.PARALLEL,
        accesses=(
            _blocked("u"),
            _blocked("rsd", write=True),
            _blocked("frct"),
            _blocked("flux", write=True),
        ),
        instructions_per_word=12.0,
        tiled=True,
    )

    program = Program(
        name="applu",
        arrays=arrays,
        phases=(Phase("ssor", (jacld, rhs), occurrences=10),),
        init_groups=(("u", "rsd", "frct"), ("flux", "jac", "coeff")),
        sequential_fraction=0.02,
    )
    return WorkloadModel(
        spec_id="110.applu",
        program=program,
        reference_time_s=2200.0,
        steady_state_repeats=50.0,
        description="SSOR PDE solver; 33-iteration blocked loops, tiled.",
    )
