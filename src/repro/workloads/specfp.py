"""Registry of the ten SPEC95fp workload models (Table 1)."""

from __future__ import annotations

from typing import Callable, Iterator

from repro.workloads import (
    applu,
    apsi,
    fpppp,
    hydro2d,
    mgrid,
    su2cor,
    swim,
    tomcatv,
    turb3d,
    wave5,
)
from repro.workloads.base import WorkloadModel

_BUILDERS: dict[str, Callable[[int], WorkloadModel]] = {
    "tomcatv": tomcatv.build,
    "swim": swim.build,
    "su2cor": su2cor.build,
    "hydro2d": hydro2d.build,
    "mgrid": mgrid.build,
    "applu": applu.build,
    "turb3d": turb3d.build,
    "apsi": apsi.build,
    "fpppp": fpppp.build,
    "wave5": wave5.build,
}

#: Suite order used throughout the paper's tables and figures.
WORKLOAD_NAMES = tuple(_BUILDERS)

#: SPEC95 reference times (SparcStation 10), seconds — the denominator of
#: the SPEC ratio in Table 2.
SPEC_REFERENCE_TIMES = {
    "tomcatv": 3700.0,
    "swim": 8600.0,
    "su2cor": 1400.0,
    "hydro2d": 2400.0,
    "mgrid": 2500.0,
    "applu": 2200.0,
    "turb3d": 4100.0,
    "apsi": 2100.0,
    "fpppp": 9600.0,
    "wave5": 3000.0,
}


def get_workload(name: str, scale: int = 1) -> WorkloadModel:
    """Build one workload model, geometrically scaled by ``scale``.

    ``scale`` must match the machine's :attr:`MachineConfig.scale_factor`
    so that footprint-to-cache ratios are preserved.
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {', '.join(WORKLOAD_NAMES)}"
        ) from None
    return builder(scale)


def iter_workloads(scale: int = 1) -> Iterator[WorkloadModel]:
    """All ten workloads in suite order."""
    for name in WORKLOAD_NAMES:
        yield get_workload(name, scale)


def data_set_mb(name: str) -> float:
    """Reference data-set size in MB (Table 1)."""
    return get_workload(name, scale=1).data_set_mb
