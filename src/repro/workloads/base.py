"""Workload model: a program plus benchmark metadata."""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.ir import Program


@dataclass(frozen=True)
class WorkloadModel:
    """One SPEC95fp benchmark as modeled for this reproduction."""

    spec_id: str  # e.g. "101.tomcatv"
    program: Program
    #: SPEC95 reference time on the SparcStation 10, in seconds (used for
    #: the SPEC ratio of Table 2).
    reference_time_s: float
    #: Multiplier converting one simulated steady-state unit into the
    #: benchmark's full run time, used to put measured times on a Table 2
    #: scale (the steady state accounts for >95% of execution, Section 3.2).
    steady_state_repeats: float = 1.0
    description: str = ""

    @property
    def name(self) -> str:
        return self.program.name

    @property
    def data_set_mb(self) -> float:
        return self.program.data_set_bytes / (1024 * 1024)

    def scaled_program(self, factor: int) -> Program:
        return self.program.scaled(factor)
