"""101.tomcatv — vectorized mesh generation (14MB reference data set).

Modeled facts from the paper: seven large data structures (only an
eight-way set-associative 1MB cache would eliminate all conflicts for 16
processors, Section 6.1); near-linear speedup; shift communication at
partition boundaries; very high bandwidth demand (the bus saturates at 16
processors); large CDPC gains beginning at small processor counts.

Each 2MB array spans 512 pages — an exact multiple of the 256 colors of
the base machine — so under a page-coloring policy all seven arrays'
partitions collide in the cache, the pathology of Figure 3.
"""

from __future__ import annotations

from repro.compiler.ir import (
    ArrayDecl,
    BoundaryAccess,
    Communication,
    Loop,
    LoopKind,
    PartitionedAccess,
    Phase,
    Program,
)
from repro.workloads.base import WorkloadModel

MB = 1024 * 1024
_COLUMNS = 512


def build(scale: int = 1) -> WorkloadModel:
    size = 2 * MB // scale
    names = ("x", "y", "rx", "ry", "aa", "dd", "d")
    arrays = tuple(ArrayDecl(name, size) for name in names)

    residual = Loop(
        name="residual",
        kind=LoopKind.PARALLEL,
        accesses=(
            PartitionedAccess("x", units=_COLUMNS),
            PartitionedAccess("y", units=_COLUMNS),
            BoundaryAccess("x", units=_COLUMNS, comm=Communication.SHIFT,
                           boundary_fraction=1.0),
            BoundaryAccess("y", units=_COLUMNS, comm=Communication.SHIFT,
                           boundary_fraction=1.0),
            PartitionedAccess("rx", units=_COLUMNS, is_write=True),
            PartitionedAccess("ry", units=_COLUMNS, is_write=True),
            PartitionedAccess("aa", units=_COLUMNS, is_write=True),
            PartitionedAccess("dd", units=_COLUMNS, is_write=True),
        ),
        instructions_per_word=10.0,
    )
    solve = Loop(
        name="solve",
        kind=LoopKind.PARALLEL,
        accesses=(
            PartitionedAccess("rx", units=_COLUMNS),
            PartitionedAccess("ry", units=_COLUMNS),
            PartitionedAccess("aa", units=_COLUMNS),
            PartitionedAccess("dd", units=_COLUMNS),
            PartitionedAccess("d", units=_COLUMNS, is_write=True),
        ),
        instructions_per_word=7.5,
    )
    update = Loop(
        name="update",
        kind=LoopKind.PARALLEL,
        accesses=(
            PartitionedAccess("x", units=_COLUMNS, is_write=True),
            PartitionedAccess("y", units=_COLUMNS, is_write=True),
            PartitionedAccess("rx", units=_COLUMNS),
            PartitionedAccess("ry", units=_COLUMNS),
        ),
        instructions_per_word=5.0,
    )

    program = Program(
        name="tomcatv",
        arrays=arrays,
        phases=(Phase("timestep", (residual, solve, update), occurrences=10),),
        init_groups=(("x", "y"), ("rx", "ry"), ("aa", "dd", "d")),
        sequential_fraction=0.01,
    )
    return WorkloadModel(
        spec_id="101.tomcatv",
        program=program,
        reference_time_s=3700.0,
        steady_state_repeats=75.0,
        description="Mesh generation; 7 x 2MB arrays, shift communication.",
    )
