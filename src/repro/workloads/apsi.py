"""141.apsi — mesoscale pollutant simulation (9MB reference data set).

The paper reports that apsi's fine-grain loop-level parallelism is
*suppressed*: it cannot be exploited effectively given the synchronization
and communication costs of bus-based multiprocessors, so the master runs
the loops alone while slaves idle (the "suppressed" overhead of Figure 2).
As a result apsi sees little or no speedup and CDPC has no effect — it is
omitted from Figure 6 along with fpppp.
"""

from __future__ import annotations

from repro.compiler.ir import (
    ArrayDecl,
    Loop,
    LoopKind,
    PartitionedAccess,
    Phase,
    Program,
)
from repro.workloads.base import WorkloadModel

KB = 1024


def build(scale: int = 1) -> WorkloadModel:
    names = tuple(f"q{i:02d}" for i in range(12))
    arrays = tuple(ArrayDecl(name, 768 * KB // scale) for name in names)

    def suppressed(loop_name: str, fields: tuple[str, ...]) -> Loop:
        return Loop(
            loop_name,
            LoopKind.SUPPRESSED,
            tuple(
                PartitionedAccess(f, units=96, is_write=(i == len(fields) - 1))
                for i, f in enumerate(fields)
            ),
            instructions_per_word=4.0,
        )

    dcdtz = suppressed("dcdtz", names[0:4])
    dtdtz = suppressed("dtdtz", names[4:8])
    wcont = Loop(
        name="wcont",
        kind=LoopKind.PARALLEL,
        accesses=tuple(
            PartitionedAccess(f, units=96, is_write=(i == 3))
            for i, f in enumerate(names[8:12])
        ),
        instructions_per_word=4.0,
    )

    program = Program(
        name="apsi",
        arrays=arrays,
        phases=(Phase("timestep", (dcdtz, dtdtz, wcont), occurrences=10),),
        init_groups=(names[0:4], names[4:8], names[8:12]),
        sequential_fraction=0.15,
    )
    return WorkloadModel(
        spec_id="141.apsi",
        program=program,
        reference_time_s=2100.0,
        steady_state_repeats=40.0,
        description="Pollutant transport; parallelism mostly suppressed.",
    )
