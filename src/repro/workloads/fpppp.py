"""145.fpppp — quantum chemistry two-electron integrals (<1MB data set).

The paper's outlier: fpppp "has essentially no loop-level parallelism" and
is "limited entirely by instruction cache misses fetched from the external
cache and puts no load on the shared bus" (Section 4.1).  We model a tiny
data set with a large instruction working set that overflows the on-chip
instruction cache but fits comfortably in the external cache.  Since the
SUIF compiler finds nothing to parallelize, the paper compiles fpppp with
the native compiler; here every loop is sequential.  Page mapping policy
is irrelevant, which is why its Table 2 times are identical across
policies.
"""

from __future__ import annotations

from repro.compiler.ir import (
    ArrayDecl,
    InstructionStream,
    Loop,
    LoopKind,
    PartitionedAccess,
    Phase,
    Program,
)
from repro.workloads.base import WorkloadModel

KB = 1024


def build(scale: int = 1) -> WorkloadModel:
    arrays = (
        ArrayDecl("integrals", 512 * KB // scale),
        ArrayDecl("density", 256 * KB // scale),
    )
    # Instruction footprint: 3x the (scaled) 32KB L1I, well inside the L2.
    instr_footprint = 96 * KB // scale

    # fpppp's hot loops are enormous straight-line basic blocks over a
    # small set of operands: instruction fetches dominate the reference
    # stream, data accesses touch only a sliver of the arrays per pass.
    twoel = Loop(
        name="twoel",
        kind=LoopKind.SEQUENTIAL,
        accesses=(
            InstructionStream(footprint_bytes=instr_footprint, sweeps=4.0),
            PartitionedAccess("integrals", units=64, sweeps=1.0, fraction=0.1),
            PartitionedAccess("density", units=32, is_write=True, fraction=0.2),
        ),
        instructions_per_word=10.0,
    )
    shell = Loop(
        name="shell",
        kind=LoopKind.SEQUENTIAL,
        accesses=(
            InstructionStream(footprint_bytes=instr_footprint, sweeps=2.0),
            PartitionedAccess("density", units=32, fraction=0.2),
        ),
        instructions_per_word=8.0,
    )

    program = Program(
        name="fpppp",
        arrays=arrays,
        phases=(Phase("scf", (twoel, shell), occurrences=10),),
        sequential_fraction=1.0,
    )
    return WorkloadModel(
        spec_id="145.fpppp",
        program=program,
        reference_time_s=9600.0,
        steady_state_repeats=30.0,
        description="No loop parallelism; instruction-cache bound.",
    )
