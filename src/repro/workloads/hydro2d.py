"""104.hydro2d — astrophysical hydrodynamics (8MB reference data set).

Forty 200KB field arrays swept by four Navier-Stokes update loops with
shift communication.  Because each array is 50 pages (not a multiple of
the 256 colors), page coloring scatters array bases quasi-randomly —
hydro2d's conflicts are birthday collisions rather than the full alignment
pathology of tomcatv/swim, and CDPC's dense per-processor packing removes
them once the per-processor footprint approaches the cache size.  The
paper sees large improvements beginning at two processors, and an 8MB
working set that fits an aggregate 4MB-per-CPU cache early (Figure 7).
"""

from __future__ import annotations

from repro.compiler.ir import (
    ArrayDecl,
    BoundaryAccess,
    Communication,
    Loop,
    LoopKind,
    PartitionedAccess,
    Phase,
    Program,
)
from repro.workloads.base import WorkloadModel

KB = 1024
_COLUMNS = 50
_NUM_FIELDS = 40


def build(scale: int = 1) -> WorkloadModel:
    size = 200 * KB // scale
    names = tuple(f"f{i:02d}" for i in range(_NUM_FIELDS))
    arrays = tuple(ArrayDecl(name, size) for name in names)

    def stencil(loop_name: str, fields: tuple[str, ...], writes: int) -> Loop:
        accesses = [
            PartitionedAccess(f, units=_COLUMNS, is_write=(i >= len(fields) - writes))
            for i, f in enumerate(fields)
        ]
        accesses.append(
            BoundaryAccess(fields[0], units=_COLUMNS, comm=Communication.SHIFT,
                           boundary_fraction=1.0)
        )
        return Loop(loop_name, LoopKind.PARALLEL, tuple(accesses),
                    instructions_per_word=9.0)

    advnce = stencil("advnce", names[0:10], writes=3)
    filter_ = stencil("filter", names[10:20], writes=3)
    trans1 = stencil("trans1", names[20:30], writes=4)
    trans2 = stencil("trans2", names[30:40], writes=4)

    program = Program(
        name="hydro2d",
        arrays=arrays,
        phases=(Phase("timestep", (advnce, filter_, trans1, trans2), occurrences=10),),
        # All forty fields are initialized by one loop nest, interleaving
        # their pages in a single fault sequence.
        init_groups=(names,),
        sequential_fraction=0.02,
    )
    return WorkloadModel(
        spec_id="104.hydro2d",
        program=program,
        reference_time_s=2400.0,
        steady_state_repeats=60.0,
        description="Hydrodynamics; 40 x 200KB fields, shift stencils.",
    )
