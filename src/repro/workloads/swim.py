"""102.swim — shallow water model (14MB reference data set).

Fourteen 1MB arrays updated by three stencil loops (calc1/calc2/calc3)
with periodic (rotate) boundary communication.  Every array is exactly 256
pages — one full color cycle — so page coloring aligns all fourteen
partitions on the same colors; CDPC gains appear once the aggregate cache
approaches the data-set size (the paper sees them from eight processors).
swim is the benchmark most sensitive to mapping policy in Figure 9
(2.6x over page coloring at 8 CPUs).
"""

from __future__ import annotations

from repro.compiler.ir import (
    ArrayDecl,
    BoundaryAccess,
    Communication,
    Loop,
    LoopKind,
    PartitionedAccess,
    Phase,
    Program,
)
from repro.workloads.base import WorkloadModel

MB = 1024 * 1024
_COLUMNS = 256

_FIELDS = ("u", "v", "p", "unew", "vnew", "pnew", "uold", "vold", "pold",
           "cu", "cv", "z", "h", "psi")


def _part(name: str, write: bool = False) -> PartitionedAccess:
    return PartitionedAccess(name, units=_COLUMNS, is_write=write)


def build(scale: int = 1) -> WorkloadModel:
    size = MB // scale
    arrays = tuple(ArrayDecl(name, size) for name in _FIELDS)

    calc1 = Loop(
        name="calc1",
        kind=LoopKind.PARALLEL,
        accesses=(
            _part("u"), _part("v"), _part("p"),
            BoundaryAccess("u", units=_COLUMNS, comm=Communication.ROTATE,
                           boundary_fraction=1.0),
            BoundaryAccess("v", units=_COLUMNS, comm=Communication.ROTATE,
                           boundary_fraction=1.0),
            _part("cu", write=True), _part("cv", write=True),
            _part("z", write=True), _part("h", write=True),
        ),
        instructions_per_word=10.0,
    )
    calc2 = Loop(
        name="calc2",
        kind=LoopKind.PARALLEL,
        accesses=(
            _part("cu"), _part("cv"), _part("z"), _part("h"),
            BoundaryAccess("cu", units=_COLUMNS, comm=Communication.ROTATE,
                           boundary_fraction=1.0),
            _part("uold"), _part("vold"), _part("pold"),
            _part("unew", write=True), _part("vnew", write=True),
            _part("pnew", write=True),
        ),
        instructions_per_word=10.0,
    )
    calc3 = Loop(
        name="calc3",
        kind=LoopKind.PARALLEL,
        accesses=(
            _part("u", write=True), _part("v", write=True), _part("p", write=True),
            _part("unew"), _part("vnew"), _part("pnew"),
            _part("uold", write=True), _part("vold", write=True),
            _part("pold", write=True),
        ),
        instructions_per_word=6.0,
    )

    program = Program(
        name="swim",
        arrays=arrays,
        phases=(Phase("timestep", (calc1, calc2, calc3), occurrences=10),),
        init_groups=(
            ("u", "v", "p", "psi"),
            ("unew", "vnew", "pnew"),
            ("uold", "vold", "pold"),
            ("cu", "cv", "z", "h"),
        ),
        sequential_fraction=0.005,
    )
    return WorkloadModel(
        spec_id="102.swim",
        program=program,
        reference_time_s=8600.0,
        steady_state_repeats=90.0,
        description="Shallow water stencil; 14 x 1MB arrays, rotate boundaries.",
    )
