"""107.mgrid — multigrid solver (7MB reference data set).

Three 2MB fine-grid arrays plus a hierarchy of coarse grids.  The number
of replacement misses is small (high reuse within V-cycles), so the paper
sees only a slight CDPC improvement above eight processors.  The fine-grid
arrays are exact color multiples, so what conflicts exist have the aligned
structure CDPC removes.
"""

from __future__ import annotations

from repro.compiler.ir import (
    ArrayDecl,
    BoundaryAccess,
    Communication,
    Loop,
    LoopKind,
    PartitionedAccess,
    Phase,
    Program,
)
from repro.workloads.base import WorkloadModel

KB = 1024
MB = 1024 * KB


def build(scale: int = 1) -> WorkloadModel:
    # 530 pages per fine grid (a 130^3-ish grid with boundary planes):
    # 18 colors off the 256-color cycle, so the three grids' partitions
    # only partially collide under a page-coloring policy.
    fine = 530 * 4096 // scale
    arrays = (
        ArrayDecl("u0", fine),
        ArrayDecl("v0", fine),
        ArrayDecl("r0", fine),
        ArrayDecl("u1", 512 * KB // scale),
        ArrayDecl("r1", 512 * KB // scale),
        ArrayDecl("u2", 128 * KB // scale),
    )

    resid = Loop(
        name="resid",
        kind=LoopKind.PARALLEL,
        accesses=(
            PartitionedAccess("u0", units=128, fraction=0.35, sweeps=2.0),
            PartitionedAccess("v0", units=128, fraction=0.35, sweeps=2.0),
            PartitionedAccess("r0", units=128, is_write=True, fraction=0.35,
                              sweeps=2.0),
            BoundaryAccess("u0", units=128, comm=Communication.SHIFT,
                           boundary_fraction=1.0),
        ),
        instructions_per_word=9.0,
    )
    psinv = Loop(
        name="psinv",
        kind=LoopKind.PARALLEL,
        accesses=(
            PartitionedAccess("r0", units=128, fraction=0.35, sweeps=2.0),
            PartitionedAccess("u0", units=128, is_write=True, fraction=0.35,
                              sweeps=2.0),
        ),
        instructions_per_word=9.0,
    )
    coarse = Loop(
        name="coarse_cycle",
        kind=LoopKind.PARALLEL,
        accesses=(
            PartitionedAccess("u1", units=64, is_write=True, sweeps=2.0),
            PartitionedAccess("r1", units=64, sweeps=2.0),
            PartitionedAccess("u2", units=32, is_write=True, sweeps=2.0),
        ),
        instructions_per_word=7.0,
    )

    program = Program(
        name="mgrid",
        arrays=arrays,
        phases=(Phase("vcycle", (resid, psinv, coarse), occurrences=10),),
        init_groups=(("u0", "v0", "r0"), ("u1", "r1", "u2")),
        sequential_fraction=0.01,
    )
    return WorkloadModel(
        spec_id="107.mgrid",
        program=program,
        reference_time_s=2500.0,
        steady_state_repeats=50.0,
        description="Multigrid V-cycles; high reuse, few replacement misses.",
    )
