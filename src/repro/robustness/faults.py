"""Deterministic fault injection for simulation runs.

A :class:`FaultPlan` describes, declaratively and seedably, how a run is
perturbed while it executes:

* **color-skewed memory pressure** — a competing address space seizes
  free frames at phase boundaries, concentrated on a band of colors
  (the case that defeats hint honoring hardest), and releases part of
  them on the off-beat so available capacity *varies over time*;
* **dropped / partial hints** — a fraction of the ``madvise`` hint table
  (or of the Digital-UNIX touch order) never reaches the kernel;
* **forced allocation failures** — individual allocations behave as if
  memory were exhausted, exercising reclaim and abort paths;
* **race storms** — the bin-hopping kernel race is amplified by extra
  concurrent faulters.

Everything is driven by one ``random.Random(seed)`` stream, so the same
plan on the same program reproduces the same perturbations exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.osmodel.physmem import PhysicalMemory


@dataclass(frozen=True)
class FaultPlan:
    """Seedable description of mid-run perturbations.

    All fields default to "off", so ``FaultPlan()`` is a no-op plan and
    each fault class can be enabled independently.
    """

    seed: int = 0
    #: Peak fraction of currently-free frames a competing address space
    #: seizes (0 disables pressure).
    pressure: float = 0.0
    #: Fraction of the seized frames concentrated on the skewed color band.
    pressure_color_skew: float = 0.75
    #: Phase boundaries between seize pulses; the competitor releases
    #: frames on the boundaries in between (capacity varies over time).
    pressure_period: int = 2
    #: Fraction of held frames released on an off-beat boundary.
    release_fraction: float = 0.5
    #: Fraction of CDPC hints (madvise table entries or touch-order pages)
    #: that are dropped before delivery.
    hint_loss: float = 0.0
    #: Probability that any single allocation is forced to behave as if
    #: memory were exhausted.
    alloc_failure_rate: float = 0.0
    #: Extra concurrent faulters injected into every page-fault round
    #: (amplifies the bin-hopping kernel race; 0 disables).
    race_storm: int = 0

    def __post_init__(self) -> None:
        for name in ("pressure", "pressure_color_skew", "hint_loss",
                     "alloc_failure_rate", "release_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {value}")
        if self.pressure_period < 1:
            raise ValueError("pressure_period must be >= 1")
        if self.race_storm < 0:
            raise ValueError("race_storm must be >= 0")

    @property
    def active(self) -> bool:
        return (
            self.pressure > 0
            or self.hint_loss > 0
            or self.alloc_failure_rate > 0
            or self.race_storm > 0
        )

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "pressure": self.pressure,
            "pressure_color_skew": self.pressure_color_skew,
            "pressure_period": self.pressure_period,
            "release_fraction": self.release_fraction,
            "hint_loss": self.hint_loss,
            "alloc_failure_rate": self.alloc_failure_rate,
            "race_storm": self.race_storm,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Inverse of :meth:`to_dict`; rehydrates byte-identically."""
        return cls(**data)


class FaultInjector:
    """Executes a :class:`FaultPlan` against one simulation's OS state.

    The engine calls :meth:`initial_pressure` once before initialization,
    :meth:`on_phase_boundary` at every phase boundary, and routes hint
    delivery and fault concurrency through the filter methods.  All
    randomness comes from the plan's seed.
    """

    def __init__(
        self,
        plan: FaultPlan,
        physmem: PhysicalMemory,
        num_colors: int,
        on_event: Optional[Callable[[str, dict], None]] = None,
    ) -> None:
        self.plan = plan
        self.physmem = physmem
        self.num_colors = num_colors
        self.on_event = on_event
        self._rng = random.Random(plan.seed)
        self._phase_index = 0
        self.frames_seized = 0
        self.frames_released = 0
        self.hints_dropped = 0
        # The skewed color band: a contiguous half of the color space,
        # chosen once per run so the pressure has a stable "shape".
        band = max(1, num_colors // 2)
        start = self._rng.randrange(num_colors)
        self.skewed_colors = {(start + i) % num_colors for i in range(band)}
        if plan.alloc_failure_rate > 0:
            physmem.fail_hook = self._alloc_failure

    # ------------------------------------------------------------------

    def _emit(self, kind: str, detail: dict) -> None:
        if self.on_event is not None:
            self.on_event(kind, detail)

    def _alloc_failure(self, preferred_color: Optional[int]) -> bool:
        return self._rng.random() < self.plan.alloc_failure_rate

    # ------------------------------------------------------------------
    # Memory pressure (competing address spaces)

    def _seize(self) -> int:
        target = int(self.physmem.free_frames() * self.plan.pressure)
        skew_count = int(target * self.plan.pressure_color_skew)
        seized = self.physmem.seize_frames(
            skew_count, self._rng, preferred_colors=self.skewed_colors
        )
        seized += self.physmem.seize_frames(target - len(seized), self._rng)
        self.frames_seized += len(seized)
        return len(seized)

    def _release(self) -> int:
        held = len(self.physmem.held_frames())
        count = int(held * self.plan.release_fraction)
        released = len(self.physmem.release_held(count, self._rng))
        self.frames_released += released
        return released

    def initial_pressure(self) -> None:
        """Apply the first seize pulse before the program initializes."""
        if self.plan.pressure <= 0:
            return
        seized = self._seize()
        self._emit("pressure", {"phase": "init", "seized": seized, "released": 0})

    def on_phase_boundary(self) -> None:
        """Oscillate the competing address space's footprint.

        Even beats of ``pressure_period`` seize back up toward the target
        fraction; odd beats release ``release_fraction`` of the held
        frames — available memory capacity varies over time instead of
        being a fixed pre-run constant.
        """
        self._phase_index += 1
        if self.plan.pressure <= 0:
            return
        beat = (self._phase_index // self.plan.pressure_period) % 2
        if beat == 0:
            seized = self._seize()
            if seized:
                self._emit(
                    "pressure",
                    {"phase": self._phase_index, "seized": seized, "released": 0},
                )
        else:
            released = self._release()
            if released:
                self._emit(
                    "pressure",
                    {"phase": self._phase_index, "seized": 0, "released": released},
                )

    # ------------------------------------------------------------------
    # Hint delivery faults

    def filter_hints(self, hints: dict[int, int]) -> dict[int, int]:
        """Drop a deterministic fraction of the madvise hint table."""
        if self.plan.hint_loss <= 0:
            return dict(hints)
        kept: dict[int, int] = {}
        dropped = 0
        for vpage in sorted(hints):
            if self._rng.random() < self.plan.hint_loss:
                dropped += 1
                self.hints_dropped += 1
                self._emit("hint_dropped", {"vpage": vpage})
            else:
                kept[vpage] = hints[vpage]
        return kept

    def filter_touch_order(self, order: list[int]) -> list[int]:
        """Drop a fraction of the Digital-UNIX touch order.

        A skipped page still faults later — in whatever order the program
        first touches it — so the hint for it is effectively lost.
        """
        if self.plan.hint_loss <= 0:
            return list(order)
        kept: list[int] = []
        for vpage in order:
            if self._rng.random() < self.plan.hint_loss:
                self.hints_dropped += 1
                self._emit("hint_dropped", {"vpage": vpage})
            else:
                kept.append(vpage)
        return kept

    # ------------------------------------------------------------------
    # Race storms

    def fault_concurrency(self, concurrent: int) -> int:
        """Amplify the number of concurrently racing page faulters."""
        if self.plan.race_storm <= 0:
            return concurrent
        return concurrent + self.plan.race_storm
