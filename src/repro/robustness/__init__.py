"""Fault injection, graceful degradation and consistency checking.

The paper's central systems claim is that CDPC's preferred colors are
*hints*: under memory pressure the OS falls back gracefully instead of
failing (Section 5.3).  This package makes that claim testable:

* :mod:`repro.robustness.faults` — a seedable :class:`FaultPlan` that
  perturbs a run mid-simulation with color-skewed memory pressure from
  competing address spaces, dropped ``madvise`` hints, forced allocation
  failures and bin-hopping race storms;
* :mod:`repro.robustness.degradation` — the event log and per-run report
  of every graceful-degradation action (reclaims, watchdog trips, aborted
  recolor steps, fallback-distance histogram);
* :mod:`repro.robustness.invariants` — a page-table / physical-memory /
  miss-accounting consistency checker runnable per simulation epoch.
"""

from repro.robustness.degradation import (
    ColdPageReclaimer,
    DegradationLog,
    DegradationReport,
)
from repro.robustness.faults import FaultInjector, FaultPlan
from repro.robustness.invariants import (
    InvariantReport,
    InvariantViolation,
    check_invariants,
)

__all__ = [
    "ColdPageReclaimer",
    "DegradationLog",
    "DegradationReport",
    "FaultInjector",
    "FaultPlan",
    "InvariantReport",
    "InvariantViolation",
    "check_invariants",
]
