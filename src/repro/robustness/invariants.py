"""Page-table / physical-memory / miss-accounting consistency checking.

The OS model's correctness rests on a handful of invariants that no layer
verified before this module existed: a frame must never be mapped twice,
free lists must be disjoint from mapped frames, every free-list entry must
sit on the list matching its color, and the memory system's two
independent demand-miss counters must agree.  :func:`check_invariants`
verifies all of them against live simulator state; the engine can run it
per epoch (``EngineOptions(check_invariants=True)``) and the CLI exposes
it through ``python -m repro faults --check-invariants``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.machine.memory_system import MemorySystem
from repro.osmodel.vm import VirtualMemory


class InvariantViolation(AssertionError):
    """A consistency invariant of the OS model does not hold."""


@dataclass
class InvariantReport:
    """Outcome of one invariant sweep."""

    checks: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def fail(self, message: str) -> None:
        self.violations.append(message)

    def raise_if_failed(self) -> None:
        if self.violations:
            raise InvariantViolation(
                f"{len(self.violations)} invariant violation(s): "
                + "; ".join(self.violations[:8])
            )


def check_invariants(
    vm: VirtualMemory, ms: Optional[MemorySystem] = None
) -> InvariantReport:
    """Verify the OS model's consistency invariants.

    Checks, in order:

    1. the page table is injective — no physical frame is mapped by two
       virtual pages;
    2. every mapped frame is within the physical frame range;
    3. every free-list entry sits on the list matching its color, appears
       exactly once across all free lists, and is within range;
    4. free, allocated, held and revoked frame sets are pairwise
       disjoint, every mapped frame is in the allocated set, and the four
       states together account for every physical frame (conservation),
       with ``capacity_frames()`` agreeing with the revoked count;
    5. when ``ms`` is given, the per-frame demand-miss counters sum to the
       memory system's independently maintained demand-miss total.

    Returns an :class:`InvariantReport`; call ``raise_if_failed()`` to
    turn violations into an :class:`InvariantViolation`.
    """
    report = InvariantReport()
    physmem = vm.physmem

    # 1 + 2: page-table injectivity and range.
    report.checks += 1
    frame_owners: dict[int, int] = {}
    for vpage, frame in vm.page_table.mappings():
        if frame in frame_owners:
            report.fail(
                f"frame {frame} double-mapped by vpages "
                f"{frame_owners[frame]} and {vpage}"
            )
        else:
            frame_owners[frame] = vpage
        if not 0 <= frame < physmem.num_frames:
            report.fail(f"mapped frame {frame} out of range (vpage {vpage})")

    # 3: free-list color placement, uniqueness and range.
    report.checks += 1
    free: set[int] = set()
    for color, queue in enumerate(physmem.free_lists()):
        for frame in queue:
            if physmem.color_of(frame) != color:
                report.fail(
                    f"frame {frame} (color {physmem.color_of(frame)}) "
                    f"on free list {color}"
                )
            if frame in free:
                report.fail(f"frame {frame} appears twice in the free lists")
            free.add(frame)
            if not 0 <= frame < physmem.num_frames:
                report.fail(f"free frame {frame} out of range")

    # 4: state disjointness and conservation.
    report.checks += 1
    allocated = set(physmem.allocated_frames())
    held = set(physmem.held_frames())
    revoked = set(physmem.revoked_frames())
    mapped = set(frame_owners)
    for name_a, set_a, name_b, set_b in (
        ("free", free, "allocated", allocated),
        ("free", free, "held", held),
        ("allocated", allocated, "held", held),
        ("free", free, "mapped", mapped),
        ("revoked", revoked, "free", free),
        ("revoked", revoked, "allocated", allocated),
        ("revoked", revoked, "held", held),
        ("revoked", revoked, "mapped", mapped),
    ):
        overlap = set_a & set_b
        if overlap:
            report.fail(
                f"{name_a}/{name_b} overlap on frames "
                f"{sorted(overlap)[:4]} ({len(overlap)} total)"
            )
    unmapped_allocations = mapped - allocated
    if unmapped_allocations:
        report.fail(
            f"mapped frames not accounted as allocated: "
            f"{sorted(unmapped_allocations)[:4]}"
        )
    accounted = len(free) + len(allocated) + len(held) + len(revoked)
    if accounted != physmem.num_frames:
        report.fail(
            f"frame conservation broken: {len(free)} free + "
            f"{len(allocated)} allocated + {len(held)} held + "
            f"{len(revoked)} revoked = {accounted}, "
            f"expected {physmem.num_frames}"
        )
    if physmem.capacity_frames() != physmem.num_frames - len(revoked):
        report.fail(
            f"capacity accounting broken: capacity_frames() = "
            f"{physmem.capacity_frames()}, expected "
            f"{physmem.num_frames - len(revoked)}"
        )

    # 5: miss-count accounting across two independent counters.
    if ms is not None:
        report.checks += 1
        per_frame = sum(ms.frame_misses.values())
        if per_frame != ms.demand_l2_misses:
            report.fail(
                f"miss accounting mismatch: per-frame counters sum to "
                f"{per_frame}, demand-miss total is {ms.demand_l2_misses}"
            )
    return report
