"""Graceful-degradation accounting and the cold-page reclaim policy.

Degradation events are the observable half of the paper's "colors are
hints" argument: a pressured run should *survive* (reclaiming frames,
falling back to nearby colors, abandoning optional migrations) and every
such survival action should be visible in the run's results rather than
silent.  :class:`DegradationLog` collects the events during a run;
:class:`DegradationReport` is the JSON-friendly summary attached to
:class:`repro.sim.results.RunResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.machine.memory_system import MemorySystem
from repro.osmodel.physmem import PhysicalMemory, ReclaimPolicy
from repro.osmodel.vm import VirtualMemory


class DegradationLog:
    """Counts degradation events by kind, keeping a bounded detail trail.

    Counting is exact; the per-event detail list is capped so a heavily
    pressured run (thousands of reclaims) cannot balloon results.
    """

    def __init__(self, max_detailed_events: int = 256) -> None:
        self.counts: dict[str, int] = {}
        self.events: list[dict] = []
        self.max_detailed_events = max_detailed_events

    def record(self, kind: str, detail: Optional[dict] = None) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if len(self.events) < self.max_detailed_events:
            event = {"kind": kind}
            if detail:
                event.update(detail)
            self.events.append(event)

    def count(self, kind: str) -> int:
        return self.counts.get(kind, 0)

    @property
    def total(self) -> int:
        return sum(self.counts.values())


@dataclass
class DegradationReport:
    """Summary of every graceful-degradation action in one run."""

    reclaims: int = 0
    watchdog_trips: int = 0
    aborted_recolor_steps: int = 0
    forced_alloc_failures: int = 0
    dropped_hints: int = 0
    pressure_events: int = 0
    frames_seized: int = 0
    frames_released: int = 0
    #: Capacity frames the host revoked / gave back during the run.
    frames_revoked: int = 0
    frames_restored: int = 0
    #: Revocations the free lists + reclaim could not satisfy in full.
    revocation_shortfall: int = 0
    #: Adaptive CDPC transactional re-plans and the page migrations (and
    #: aborted migration passes) they performed.
    adaptive_replans: int = 0
    replan_migrations: int = 0
    aborted_replans: int = 0
    #: Hinted allocations by ring distance from the preferred color to the
    #: granted color; ``{0: n}`` means every hint was honored exactly.
    fallback_distance_histogram: dict[int, int] = field(default_factory=dict)
    #: ``(beat, capacity_frames, free_frames)`` after each churn beat —
    #: kept separately from ``events`` because the bounded detail trail
    #: can overflow long before the last beat fires.
    capacity_timeline: list[tuple[int, int, int]] = field(default_factory=list)
    invariant_checks: int = 0
    events: list[dict] = field(default_factory=list)

    @property
    def fallback_allocations(self) -> int:
        """Hinted allocations that did *not* land on the preferred color."""
        return sum(
            count for distance, count in self.fallback_distance_histogram.items()
            if distance > 0
        )

    @property
    def total_events(self) -> int:
        return (
            self.reclaims
            + self.watchdog_trips
            + self.aborted_recolor_steps
            + self.forced_alloc_failures
            + self.dropped_hints
            + self.pressure_events
            + self.adaptive_replans
        )

    @classmethod
    def collect(
        cls,
        log: DegradationLog,
        physmem: PhysicalMemory,
        aborted_recolor_steps: int = 0,
        invariant_checks: int = 0,
        injector=None,
        churn=None,
        adaptive=None,
    ) -> "DegradationReport":
        frames_seized = injector.frames_seized if injector is not None else 0
        frames_released = injector.frames_released if injector is not None else 0
        if churn is not None:
            frames_seized += churn.frames_seized
            frames_released += churn.frames_released
        return cls(
            reclaims=physmem.reclaims,
            watchdog_trips=log.count("watchdog_trip"),
            aborted_recolor_steps=aborted_recolor_steps,
            forced_alloc_failures=physmem.forced_failures,
            dropped_hints=(
                injector.hints_dropped if injector is not None
                else log.count("hint_dropped")
            ),
            pressure_events=log.count("pressure"),
            frames_seized=frames_seized,
            frames_released=frames_released,
            frames_revoked=physmem.frames_revoked_total,
            frames_restored=physmem.frames_restored_total,
            revocation_shortfall=physmem.revocation_shortfall,
            adaptive_replans=adaptive.total_replans if adaptive is not None else 0,
            replan_migrations=(
                adaptive.total_migrations if adaptive is not None else 0
            ),
            aborted_replans=(
                adaptive.aborted_replans if adaptive is not None else 0
            ),
            fallback_distance_histogram=dict(
                sorted(physmem.fallback_distance.items())
            ),
            capacity_timeline=(
                list(churn.timeline) if churn is not None else []
            ),
            invariant_checks=invariant_checks,
            events=list(log.events),
        )

    def to_dict(self) -> dict:
        return {
            "reclaims": self.reclaims,
            "watchdog_trips": self.watchdog_trips,
            "aborted_recolor_steps": self.aborted_recolor_steps,
            "forced_alloc_failures": self.forced_alloc_failures,
            "dropped_hints": self.dropped_hints,
            "pressure_events": self.pressure_events,
            "frames_seized": self.frames_seized,
            "frames_released": self.frames_released,
            "frames_revoked": self.frames_revoked,
            "frames_restored": self.frames_restored,
            "revocation_shortfall": self.revocation_shortfall,
            "adaptive_replans": self.adaptive_replans,
            "replan_migrations": self.replan_migrations,
            "aborted_replans": self.aborted_replans,
            "fallback_allocations": self.fallback_allocations,
            "fallback_distance_histogram": {
                str(k): v
                for k, v in sorted(self.fallback_distance_histogram.items())
            },
            "capacity_timeline": [list(row) for row in self.capacity_timeline],
            "invariant_checks": self.invariant_checks,
            "total_events": self.total_events,
            "events": list(self.events),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DegradationReport":
        """Inverse of :meth:`to_dict`; rehydrates byte-identically.

        ``fallback_allocations`` and ``total_events`` are derived
        properties and are dropped; the histogram keys come back as ints.
        """
        payload = dict(data)
        payload.pop("fallback_allocations", None)
        payload.pop("total_events", None)
        payload["fallback_distance_histogram"] = {
            int(k): v
            for k, v in payload.get("fallback_distance_histogram", {}).items()
        }
        payload["capacity_timeline"] = [
            tuple(row) for row in payload.get("capacity_timeline", [])
        ]
        return cls(**payload)


class ColdPageReclaimer(ReclaimPolicy):
    """Evict the coldest mapped page when the allocator is exhausted.

    "Cold" is judged by the memory system's per-frame miss counts: the
    mapped frame with the fewest external-cache misses is the one whose
    working-set contribution is smallest, so evicting it (unmap, purge
    its cache lines, shoot down its TLB entries) costs the least.  The
    evicted page simply faults back in on its next access — the normal
    paging path, minus the disk.

    ``on_evict(vpage, frame)`` lets the engine drop its own translation
    cache for the evicted page.
    """

    def __init__(
        self,
        vm: VirtualMemory,
        ms: MemorySystem,
        on_evict: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        self.vm = vm
        self.ms = ms
        self.on_evict = on_evict
        self.evictions: int = 0

    def reclaim(
        self, physmem: PhysicalMemory, preferred_color: Optional[int]
    ) -> Optional[int]:
        coldest_vpage: Optional[int] = None
        coldest_frame: Optional[int] = None
        coldest_misses: Optional[int] = None
        for vpage, frame in self.vm.page_table.mappings():
            misses = self.ms.frame_misses.get(frame, 0)
            if (
                coldest_misses is None
                or misses < coldest_misses
                or (misses == coldest_misses and frame < coldest_frame)
            ):
                coldest_vpage, coldest_frame, coldest_misses = vpage, frame, misses
        if coldest_vpage is None:
            return None
        self.vm.page_table.unmap(coldest_vpage)
        self.ms.invalidate_frame(coldest_frame)
        self.ms.shootdown(coldest_vpage)
        physmem.free(coldest_frame)
        self.evictions += 1
        if self.on_evict is not None:
            self.on_evict(coldest_vpage, coldest_frame)
        return coldest_frame
