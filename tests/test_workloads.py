"""Tests for the SPEC95fp workload models (Table 1 fidelity + structure)."""

import pytest

from repro.common import Partitioning
from repro.compiler.ir import (
    InstructionStream,
    LoopKind,
    PartitionedAccess,
    StridedAccess,
)
from repro.workloads import (
    SPEC_REFERENCE_TIMES,
    WORKLOAD_NAMES,
    data_set_mb,
    get_workload,
    iter_workloads,
)

# Reference data-set sizes from Table 1, MB (fpppp is "< 1").
TABLE1 = {
    "tomcatv": 14,
    "swim": 14,
    "su2cor": 23,
    "hydro2d": 8,
    "mgrid": 7,
    "applu": 31,
    "turb3d": 24,
    "apsi": 9,
    "fpppp": 1,
    "wave5": 40,
}


class TestSuite:
    def test_all_ten_benchmarks_present(self):
        assert len(WORKLOAD_NAMES) == 10
        assert set(WORKLOAD_NAMES) == set(TABLE1)

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_data_set_sizes_match_table1(self, name):
        mb = data_set_mb(name)
        if name == "fpppp":
            assert mb < 1.0
        else:
            assert mb == pytest.approx(TABLE1[name], rel=0.07)

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_scaling_preserves_page_structure(self, name):
        """Scaled arrays must keep the same page count at the scaled page
        size — the invariant that keeps color collisions faithful."""
        full = get_workload(name, scale=1)
        scaled = get_workload(name, scale=16)
        for f, s in zip(full.program.arrays, scaled.program.arrays):
            full_pages = -(-f.size_bytes // 4096)
            scaled_pages = -(-s.size_bytes // 256)
            assert full_pages == scaled_pages, f.name

    def test_reference_times_cover_suite(self):
        assert set(SPEC_REFERENCE_TIMES) == set(WORKLOAD_NAMES)
        assert all(t > 0 for t in SPEC_REFERENCE_TIMES.values())

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            get_workload("gcc")

    def test_iter_workloads_in_suite_order(self):
        names = [w.name for w in iter_workloads(scale=16)]
        assert names == list(WORKLOAD_NAMES)


class TestStructureFacts:
    def test_tomcatv_has_seven_arrays(self):
        # Section 6.1: "tomcatv has seven large data structures".
        assert len(get_workload("tomcatv").program.arrays) == 7

    def test_applu_loops_have_33_blocked_iterations(self):
        # Section 4.1: "the parallelized loops of applu consist of only 33
        # iterations".
        program = get_workload("applu").program
        for phase in program.phases:
            for loop in phase.loops:
                assert loop.effective_iterations == 33
                for access in loop.accesses:
                    if isinstance(access, PartitionedAccess):
                        assert access.partitioning is Partitioning.BLOCKED

    def test_applu_is_tiled(self):
        program = get_workload("applu").program
        assert all(loop.tiled for phase in program.phases for loop in phase.loops)

    def test_turb3d_phase_occurrences(self):
        # Section 3.2: four phases occurring 11, 66, 100 and 120 times.
        program = get_workload("turb3d").program
        assert [phase.occurrences for phase in program.phases] == [11, 66, 100, 120]

    def test_su2cor_has_strided_gauge_arrays(self):
        program = get_workload("su2cor").program
        strided = {
            access.array
            for phase in program.phases
            for loop in phase.loops
            for access in loop.accesses
            if isinstance(access, StridedAccess)
        }
        assert strided == {"u1", "u2"}

    def test_fpppp_entirely_sequential(self):
        # Section 4.1: fpppp has essentially no loop-level parallelism.
        program = get_workload("fpppp").program
        kinds = {loop.kind for phase in program.phases for loop in phase.loops}
        assert kinds == {LoopKind.SEQUENTIAL}

    def test_fpppp_instruction_footprint_exceeds_l1i(self):
        program = get_workload("fpppp").program
        footprints = [
            access.footprint_bytes
            for phase in program.phases
            for loop in phase.loops
            for access in loop.accesses
            if isinstance(access, InstructionStream)
        ]
        assert footprints and all(f > 32 * 1024 for f in footprints)

    def test_apsi_and_wave5_have_suppressed_loops(self):
        for name in ("apsi", "wave5"):
            program = get_workload(name).program
            kinds = [loop.kind for phase in program.phases for loop in phase.loops]
            assert LoopKind.SUPPRESSED in kinds, name

    def test_color_aligned_sizes_for_conflict_benchmarks(self):
        """tomcatv and swim arrays are exact multiples of the 1MB cache's
        color cycle (256 pages), creating the aligned-conflict pathology."""
        for name in ("tomcatv", "swim"):
            program = get_workload(name).program
            for decl in program.arrays:
                assert (decl.size_bytes // 4096) % 256 == 0, (name, decl.name)

    def test_su2cor_work_arrays_not_color_aligned(self):
        program = get_workload("su2cor").program
        for decl in program.arrays:
            if decl.name.startswith("w"):
                assert (decl.size_bytes // 4096) % 256 != 0

    def test_hydro2d_has_forty_fields(self):
        assert len(get_workload("hydro2d").program.arrays) == 40

    def test_descriptions_and_ids(self):
        for workload in iter_workloads():
            assert workload.spec_id.split(".")[1] == workload.name
            assert workload.description
            assert workload.steady_state_repeats >= 1
