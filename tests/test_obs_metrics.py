"""Unit tests for the metrics registry: instruments, scopes, merging."""

from __future__ import annotations

import pytest

from repro.obs import (
    DEFAULT_NS_EDGES,
    NULL_REGISTRY,
    MetricsRegistry,
    ObsConfig,
    Observability,
    SampledProfiler,
    validate_metrics,
)


class TestCounterGauge:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        counter.inc()
        counter.inc(4)
        assert registry.snapshot()["counters"]["hits"] == 5

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("rate")
        gauge.set(0.5)
        gauge.set(0.25)
        assert registry.snapshot()["gauges"]["rate"] == 0.25


class TestHistogram:
    def test_bucket_boundaries(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", edges=(10.0, 20.0))
        # Edges are upper-inclusive: counts[i] counts values <= edges[i].
        for value in (5, 10, 15, 20, 25):
            hist.observe(value)
        snap = registry.snapshot()["histograms"]["h"]
        assert snap["edges"] == [10.0, 20.0]
        assert snap["counts"] == [2, 2, 1]
        assert snap["count"] == 5
        assert snap["sum"] == 75.0

    def test_observe_many(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", edges=(1.0,))
        hist.observe_many(0.5, 10)
        snap = registry.snapshot()["histograms"]["h"]
        assert snap["counts"] == [10, 0]
        assert snap["count"] == 10
        assert snap["sum"] == 5.0

    def test_mean(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        assert hist.mean() == 0.0
        hist.observe(2.0)
        hist.observe(4.0)
        assert hist.mean() == 3.0

    def test_default_edges_are_ns_scale(self):
        assert DEFAULT_NS_EDGES[0] == 1000.0
        assert all(b > a for a, b in zip(DEFAULT_NS_EDGES, DEFAULT_NS_EDGES[1:]))


class TestScopesAndMerge:
    def test_scope_isolation(self):
        run_a = MetricsRegistry(scope="run")
        run_b = MetricsRegistry(scope="run")
        run_a.counter("n").inc(3)
        assert "n" not in run_b.snapshot()["counters"]

    def test_merge_counters_add_gauges_last_write(self):
        campaign = MetricsRegistry(scope="campaign")
        for value in (1, 2):
            run = MetricsRegistry(scope="run")
            run.counter("n").inc(value)
            run.gauge("g").set(float(value))
            campaign.merge(run.snapshot())
        snap = campaign.snapshot()
        assert snap["scope"] == "campaign"
        assert snap["counters"]["n"] == 3
        assert snap["gauges"]["g"] == 2.0

    def test_merge_histograms_bucketwise(self):
        campaign = MetricsRegistry(scope="campaign")
        for _ in range(2):
            run = MetricsRegistry(scope="run")
            run.histogram("h", edges=(10.0,)).observe(5.0)
            run.histogram("h", edges=(10.0,)).observe(15.0)
            campaign.merge(run.snapshot())
        snap = campaign.snapshot()["histograms"]["h"]
        assert snap["counts"] == [2, 2]
        assert snap["sum"] == 40.0

    def test_merge_mismatched_edges_rejected(self):
        campaign = MetricsRegistry(scope="campaign")
        run = MetricsRegistry(scope="run")
        run.histogram("h", edges=(10.0,)).observe(1.0)
        campaign.histogram("h", edges=(99.0,))
        with pytest.raises(ValueError):
            campaign.merge(run.snapshot())

    def test_snapshot_is_schema_valid(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(123.0)
        validate_metrics(registry.snapshot())


class TestNullRegistry:
    def test_disabled_and_inert(self):
        assert not NULL_REGISTRY.enabled
        NULL_REGISTRY.counter("x").inc(5)
        NULL_REGISTRY.gauge("y").set(1.0)
        NULL_REGISTRY.histogram("z").observe(2.0)
        snap = NULL_REGISTRY.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}

    def test_shared_singleton(self):
        bundle = Observability.from_config(None)
        assert bundle.registry is NULL_REGISTRY
        assert not bundle.enabled


class TestSampledProfiler:
    def test_deterministic_sampling_rate(self):
        registry = MetricsRegistry()
        profiler = SampledProfiler(
            registry.histogram("ns"),
            registry.counter("sampled"),
            registry.counter("total"),
            rate=4,
        )
        observed = 0
        for _ in range(16):
            started = profiler.tick()
            if started is not None:
                profiler.observe(started)
                observed += 1
        snap = registry.snapshot()
        assert snap["counters"]["total"] == 16
        assert snap["counters"]["sampled"] == 4
        assert observed == 4
        assert snap["histograms"]["ns"]["count"] == 4

    def test_observability_profiler_factory(self):
        bundle = Observability.from_config(ObsConfig(profile_sample_rate=2))
        profiler = bundle.profiler("engine.chunk")
        assert profiler is not None
        assert Observability.from_config(
            ObsConfig(profile_sample_rate=0)
        ).profiler("engine.chunk") is None
        assert Observability.from_config(None).profiler("engine.chunk") is None
