"""Tests for CDPC delivery mechanisms and engine option plumbing."""

import pytest

from repro.compiler.ir import InitOrder
from repro.machine.config import CacheConfig, MachineConfig
from repro.osmodel.policies import BinHoppingPolicy, CdpcHintPolicy
from repro.sim.engine import EngineOptions, _build_policy, _Simulation, run_program

from tests.conftest import make_stencil_program


def machine(num_cpus=4) -> MachineConfig:
    return MachineConfig(
        num_cpus=num_cpus,
        page_size=256,
        l1d=CacheConfig(1024, 64, 2),
        l1i=CacheConfig(1024, 64, 2),
        l2=CacheConfig(8192, 64, 1),
    )


class TestDeliveryResolution:
    def test_auto_resolves_by_native_policy(self):
        assert EngineOptions(policy="page_coloring").resolved_delivery() == "madvise"
        assert EngineOptions(policy="bin_hopping").resolved_delivery() == "touch"

    def test_explicit_delivery_wins(self):
        options = EngineOptions(policy="bin_hopping", cdpc_delivery="madvise")
        assert options.resolved_delivery() == "madvise"

    def test_policy_construction(self):
        config = machine()
        assert isinstance(
            _build_policy(config, EngineOptions(policy="bin_hopping")),
            BinHoppingPolicy,
        )
        cdpc = _build_policy(
            config, EngineOptions(policy="page_coloring", cdpc=True)
        )
        assert isinstance(cdpc, CdpcHintPolicy)
        # Touch delivery keeps the native policy unwrapped.
        touch = _build_policy(
            config, EngineOptions(policy="bin_hopping", cdpc=True)
        )
        assert isinstance(touch, BinHoppingPolicy)


class TestDeliveryEquivalence:
    def test_madvise_and_touch_realize_same_colors(self):
        """Section 5.3's two implementations must produce one mapping."""
        config = machine()
        program = make_stencil_program(config.page_size)

        sims = {}
        for delivery, policy in (("madvise", "page_coloring"),
                                 ("touch", "bin_hopping")):
            options = EngineOptions(
                policy=policy, cdpc=True, cdpc_delivery=delivery, init_jitter=0
            )
            sim = _Simulation(program, config, options)
            sim.deliver_cdpc()
            sim.run_init()
            sims[delivery] = sim

        madvise, touch = sims["madvise"], sims["touch"]
        for vpage in madvise.runtime.touch_order():
            assert (
                madvise.vm.color_of_vpage(vpage) == touch.vm.color_of_vpage(vpage)
            ), vpage

    def test_touch_delivery_serializes_faults_upfront(self):
        config = machine()
        program = make_stencil_program(config.page_size)
        options = EngineOptions(policy="bin_hopping", cdpc=True)
        sim = _Simulation(program, config, options)
        sim.deliver_cdpc()
        hinted = len(sim.runtime.touch_order())
        assert sim.vm.faults == hinted
        # Kernel time for the serialized faults is charged to the master.
        assert sim.ms.stats.cpus[0].overhead_ns["kernel"] > 0


class TestInitOrder:
    def test_grouped_init_interleaves_within_groups(self):
        import dataclasses

        config = machine()
        program = make_stencil_program(config.page_size)
        program = dataclasses.replace(
            program, init_groups=(("s0", "s1"), ("s2", "s3"))
        )
        sim = _Simulation(program, config, EngineOptions(init_jitter=0))
        order = sim.init_pages_order()
        pages_s0 = set(sim.layout.pages("s0", config.page_size))
        pages_s1 = set(sim.layout.pages("s1", config.page_size))
        group1_len = len(pages_s0) + len(pages_s1)
        first_group = order[:group1_len]
        # First group's pages come first, alternating between its arrays.
        assert set(first_group) == pages_s0 | pages_s1
        assert first_group[0] in pages_s0
        assert first_group[1] in pages_s1

    def test_sequential_init_orders_by_array(self):
        import dataclasses

        config = machine()
        program = dataclasses.replace(
            make_stencil_program(config.page_size),
            init_order=InitOrder.SEQUENTIAL,
        )
        sim = _Simulation(program, config, EngineOptions(init_jitter=0))
        order = sim.init_pages_order()
        pages_s0 = list(sim.layout.pages("s0", config.page_size))
        assert order[: len(pages_s0)] == pages_s0

    def test_jitter_perturbs_bin_hopping_init_only(self):
        config = machine()
        program = make_stencil_program(config.page_size)
        plain = _Simulation(
            program, config, EngineOptions(policy="bin_hopping", init_jitter=0)
        ).init_pages_order()
        jittered = _Simulation(
            program, config, EngineOptions(policy="bin_hopping", init_jitter=4)
        ).init_pages_order()
        pc = _Simulation(
            program, config, EngineOptions(policy="page_coloring", init_jitter=4)
        ).init_pages_order()
        assert sorted(plain) == sorted(jittered)
        assert plain != jittered
        assert pc == plain  # page coloring ignores fault order: no jitter

    def test_jitter_is_seeded(self):
        config = machine()
        program = make_stencil_program(config.page_size)
        options = EngineOptions(policy="bin_hopping", init_jitter=4, seed=9)
        a = _Simulation(program, config, options).init_pages_order()
        b = _Simulation(program, config, options).init_pages_order()
        assert a == b


class TestFrameBudget:
    def test_budget_covers_footprint_with_headroom(self):
        config = machine()
        program = make_stencil_program(config.page_size)
        sim = _Simulation(program, config, EngineOptions())
        data_pages = -(-sim.layout.total_bytes // config.page_size)
        assert sim.vm.physmem.num_frames >= 2 * data_pages
        assert sim.vm.physmem.num_frames % config.num_colors == 0

    def test_full_run_never_exhausts_memory(self):
        config = machine()
        program = make_stencil_program(config.page_size, num_arrays=6, pages=24)
        result = run_program(program, config, EngineOptions(cdpc=True))
        assert result.hint_honor_rate == pytest.approx(1.0)
