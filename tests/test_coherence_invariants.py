"""Property tests on the coherence protocol's invariants.

Hypothesis drives random interleavings of reads/writes from multiple
processors against one memory system and checks the invariants an
invalidate protocol must maintain:

* single-writer: a dirty line has exactly one owner, which caches it;
* write-invalidate: after a write, no other processor holds the line;
* the sharer directory never claims a processor that evicted the line;
* classification sanity: the first access to a line by a processor is
  COLD; sharing misses only follow a remote write.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.config import CacheConfig, MachineConfig
from repro.machine.memory_system import MemorySystem
from repro.machine.stats import MissKind


def tiny(num_cpus=3) -> MachineConfig:
    return MachineConfig(
        num_cpus=num_cpus,
        page_size=256,
        l1d=CacheConfig(512, 64, 2),
        l1i=CacheConfig(512, 64, 2),
        l2=CacheConfig(2048, 64, 1),  # 32 lines
    )


ops_strategy = st.lists(
    st.tuples(
        st.integers(0, 2),  # cpu
        st.integers(0, 15),  # word index (lines 0..3, 8 words each... )
        st.booleans(),  # write?
    ),
    min_size=1,
    max_size=200,
)


@given(ops_strategy)
@settings(max_examples=80, deadline=None)
def test_single_writer_invariant(ops):
    ms = MemorySystem(tiny())
    t = 0.0
    for cpu, word, is_write in ops:
        addr = word * 8
        ms.access(cpu, t, addr, addr, is_write)
        t += 10.0
        if is_write:
            sharers, dirty = ms.line_state(addr)
            assert dirty == cpu
            assert sharers == frozenset({cpu})


@given(ops_strategy)
@settings(max_examples=80, deadline=None)
def test_sharers_subset_of_caching_cpus(ops):
    config = tiny()
    ms = MemorySystem(config)
    t = 0.0
    touched = set()
    for cpu, word, is_write in ops:
        addr = word * 8
        ms.access(cpu, t, addr, addr, is_write)
        t += 10.0
        touched.add(addr & ~(config.l2.line_size - 1))
    for line in touched:
        sharers, dirty = ms.line_state(line)
        for cpu in sharers:
            assert ms._l2[cpu].contains(line), (line, cpu)
        if dirty is not None:
            assert dirty in sharers


@given(ops_strategy)
@settings(max_examples=80, deadline=None)
def test_first_touch_per_cpu_is_cold(ops):
    ms = MemorySystem(tiny())
    t = 0.0
    seen: set[tuple[int, int]] = set()
    for cpu, word, is_write in ops:
        addr = word * 8
        line = addr & ~63
        result = ms.access(cpu, t, addr, addr, is_write)
        t += 10.0
        if (cpu, line) not in seen:
            if result.miss_kind is not None:
                assert result.miss_kind is MissKind.COLD
            seen.add((cpu, line))
        else:
            assert result.miss_kind is not MissKind.COLD


@given(ops_strategy)
@settings(max_examples=80, deadline=None)
def test_sharing_misses_only_after_remote_write(ops):
    ms = MemorySystem(tiny())
    t = 0.0
    last_writer: dict[int, int] = {}
    for cpu, word, is_write in ops:
        addr = word * 8
        line = addr & ~63
        result = ms.access(cpu, t, addr, addr, is_write)
        t += 10.0
        if result.miss_kind in (MissKind.TRUE_SHARING, MissKind.FALSE_SHARING):
            assert line in last_writer and last_writer[line] != cpu
        if is_write:
            last_writer[line] = cpu


@given(ops_strategy)
@settings(max_examples=40, deadline=None)
def test_stats_conserve_accesses(ops):
    """Every data access is exactly one of: L1 hit, L2 hit, or L2 miss."""
    ms = MemorySystem(tiny())
    t = 0.0
    for cpu, word, is_write in ops:
        addr = word * 8
        ms.access(cpu, t, addr, addr, is_write)
        t += 10.0
    total = sum(
        s.l1d_hits + s.l2_hits + s.total_l2_misses for s in ms.stats.cpus
    )
    assert total == len(ops)
