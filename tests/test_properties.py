"""Cross-module property-based tests on the core invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import Communication, Partitioning
from repro.core.access_summary import (
    AccessSummary,
    ArrayPartitioning,
    CommunicationPattern,
)
from repro.core.coloring import generate_page_colors
from repro.core.ordering import order_access_sets
from repro.core.segments import (
    UniformAccessSegment,
    UniformAccessSet,
    compute_segments,
    group_into_sets,
)

PAGE = 256


@st.composite
def summaries(draw):
    """Random multi-array summaries with optional communication patterns."""
    num_arrays = draw(st.integers(1, 5))
    summary = AccessSummary()
    cursor = 0
    for i in range(num_arrays):
        pages = draw(st.integers(2, 40))
        unit_pages = draw(st.sampled_from([1, 2]))
        partitioning = draw(st.sampled_from(list(Partitioning)))
        part = ArrayPartitioning(
            f"a{i}", cursor * PAGE, pages * PAGE,
            min(unit_pages, pages) * PAGE, partitioning,
        )
        summary.partitionings.append(part)
        if draw(st.booleans()):
            kind = draw(st.sampled_from(
                [Communication.SHIFT, Communication.ROTATE]
            ))
            summary.communications.append(
                CommunicationPattern(part, kind, PAGE)
            )
        cursor += pages
    for i in range(num_arrays):
        for j in range(i + 1, num_arrays):
            if draw(st.booleans()):
                summary.add_group(f"a{i}", f"a{j}")
    return summary


class TestColoringProperties:
    @given(summaries(), st.integers(1, 16), st.integers(2, 64))
    @settings(max_examples=60, deadline=None)
    def test_page_order_is_permutation_of_summarized_pages(
        self, summary, num_cpus, num_colors
    ):
        coloring = generate_page_colors(summary, PAGE, num_colors, num_cpus)
        expected = set()
        for part in summary.partitionings:
            first = part.start // PAGE
            last = (part.start + part.size - 1) // PAGE
            expected.update(range(first, last + 1))
        assert set(coloring.page_order) == expected
        assert len(coloring.page_order) == len(expected)

    @given(summaries(), st.integers(1, 16), st.integers(2, 64))
    @settings(max_examples=60, deadline=None)
    def test_colors_round_robin_and_in_range(self, summary, num_cpus, num_colors):
        coloring = generate_page_colors(summary, PAGE, num_colors, num_cpus)
        for index, page in enumerate(coloring.page_order):
            assert coloring.colors[page] == index % num_colors

    @given(summaries(), st.integers(1, 16), st.integers(2, 64))
    @settings(max_examples=30, deadline=None)
    def test_coloring_is_deterministic(self, summary, num_cpus, num_colors):
        first = generate_page_colors(summary, PAGE, num_colors, num_cpus)
        second = generate_page_colors(summary, PAGE, num_colors, num_cpus)
        assert first.page_order == second.page_order
        assert first.colors == second.colors

    @given(summaries(), st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_conflict_free_when_enough_colors(self, summary, num_cpus):
        """With one color per page, every processor is trivially
        conflict-free; the algorithm must never assign duplicates."""
        total_pages = sum(
            (p.start + p.size - 1) // PAGE - p.start // PAGE + 1
            for p in summary.partitionings
        )
        coloring = generate_page_colors(summary, PAGE, total_pages, num_cpus)
        assert len(set(coloring.colors.values())) == len(coloring.colors)


class TestSegmentProperties:
    @given(summaries(), st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_segments_disjoint_within_array(self, summary, num_cpus):
        segments = compute_segments(summary, PAGE, num_cpus)
        by_array: dict[str, list] = {}
        for segment in segments:
            by_array.setdefault(segment.array, []).append(segment)
        for array_segments in by_array.values():
            pages = [p for seg in array_segments for p in seg.pages]
            assert len(pages) == len(set(pages))

    @given(summaries(), st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_single_cpu_yields_single_set(self, summary, num_cpus):
        segments = compute_segments(summary, PAGE, 1)
        sets = group_into_sets(segments)
        assert len(sets) <= 1
        if sets:
            assert sets[0].cpus == frozenset({0})


class TestOrderingProperties:
    @given(
        st.lists(
            st.frozensets(st.integers(0, 7), min_size=1, max_size=4),
            min_size=1,
            max_size=12,
            unique=True,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_path_is_permutation_of_sets(self, cpu_sets):
        sets = [
            UniformAccessSet(
                cpus, [UniformAccessSegment("a", 8 * i, 8 * i + 4, cpus)]
            )
            for i, cpus in enumerate(cpu_sets)
        ]
        ordered = order_access_sets(sets)
        assert sorted(id(s) for s in ordered) == sorted(id(s) for s in sets)

    @given(st.integers(2, 12))
    @settings(max_examples=20, deadline=None)
    def test_neighbour_chain_is_optimal_path(self, num_cpus):
        """For the canonical stencil structure ({p} and {p,p+1} sets), the
        greedy heuristic must find the Hamiltonian path that uses every
        edge — the property Figure 4(b) illustrates."""
        sets = [
            UniformAccessSet(
                frozenset({p}),
                [UniformAccessSegment("a", 10 * p, 10 * p + 4, frozenset({p}))],
            )
            for p in range(num_cpus)
        ]
        sets += [
            UniformAccessSet(
                frozenset({p, p + 1}),
                [UniformAccessSegment(
                    "a", 200 + 10 * p, 204 + 10 * p, frozenset({p, p + 1})
                )],
            )
            for p in range(num_cpus - 1)
        ]
        ordered = order_access_sets(sets)
        # Every adjacent pair in the path shares a processor.
        for left, right in zip(ordered, ordered[1:]):
            assert left.cpus & right.cpus


class TestEngineDeterminism:
    @given(st.integers(0, 3))
    @settings(max_examples=4, deadline=None)
    def test_same_options_same_result(self, seed):
        from repro.machine.config import sgi_base
        from repro.sim.engine import EngineOptions, run_benchmark
        from repro.sim.tracegen import SimProfile

        config = sgi_base(2).scaled(16)
        options = EngineOptions(
            policy="bin_hopping", seed=seed, race_seed=seed,
            profile=SimProfile.fast(),
        )
        first = run_benchmark("fpppp", config, options)
        second = run_benchmark("fpppp", config, options)
        assert math.isclose(first.wall_ns, second.wall_ns)
        assert first.miss_breakdown() == second.miss_breakdown()
