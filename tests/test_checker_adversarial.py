"""Adversarial property tests: seeded races must never be reported clean.

Each case constructs an affine nest that *provably* contains a
cross-processor overlap — the overlap is planted by construction, with a
known witness — and asserts the detector never answers ``clean``.  The
generators randomize subscript coefficients, loop extents, processor
counts, partitioning and direction, so the detector's refutation logic
(GCD, Banerjee bounds) is exercised against inputs where refutation would
be *wrong*.
"""

from __future__ import annotations

import random

import pytest

from repro.checker import check_nest, test_cross_processor as _cross
from repro.common import Direction, Partitioning, iteration_ranges
from repro.compiler.affine import AffineNest, AffineRef, I, J, Subscript
from repro.compiler.ir import LoopKind

cross_verdict = _cross

SEEDS = range(40)


def make_nest(refs, i_extent, j_extent, part, direction):
    return AffineNest(
        name="adv", i_extent=i_extent, j_extent=j_extent, refs=tuple(refs),
        kind=LoopKind.PARALLEL, partitioning=part, direction=direction,
    )


def cpu_map(i_extent, num_cpus, part, direction):
    cpu_of = [0] * i_extent
    ranges = iteration_ranges(i_extent, num_cpus, part, direction)
    for cpu, (lo, hi) in enumerate(ranges):
        for i in range(lo, hi):
            cpu_of[i] = cpu
    return cpu_of


def random_schedule(rng):
    part = rng.choice([Partitioning.EVEN, Partitioning.BLOCKED])
    direction = rng.choice([Direction.FORWARD, Direction.REVERSE])
    return part, direction


def subscript_value(sub, i, j):
    return sub.i_coef * i + sub.j_coef * j + sub.const


@pytest.mark.parametrize("seed", SEEDS)
def test_constructed_overlap_never_clean(seed):
    """Random coefficients, witness planted by choosing the constants.

    Pick a witness (i1, j1) / (i2, j2) on two different processors first,
    pick arbitrary coefficients for both references, then solve for the
    second reference's constants so both subscripts agree at the witness.
    The pair therefore *has* a cross-processor overlap whatever else the
    coefficients do.
    """
    rng = random.Random(seed)
    num_cpus = rng.choice([2, 4, 8, 16])
    i_extent = rng.randrange(2 * num_cpus, 4 * num_cpus + 1)
    j_extent = rng.randrange(4, 33)
    part, direction = random_schedule(rng)
    cpu_of = cpu_map(i_extent, num_cpus, part, direction)

    i1 = rng.randrange(i_extent)
    others = [i for i in range(i_extent) if cpu_of[i] != cpu_of[i1]]
    i2 = rng.choice(others)
    j1 = rng.randrange(j_extent)
    j2 = rng.randrange(j_extent)

    def coef(allow_zero=True):
        choices = [-2, -1, 1, 2] + ([0] if allow_zero else [])
        return rng.choice(choices)

    row_a = Subscript(coef(), coef(), rng.randrange(-3, 4))
    col_a = Subscript(coef(), coef(), rng.randrange(-3, 4))
    a2, b2 = coef(), coef()
    d2, e2 = coef(), coef()
    c2 = subscript_value(row_a, i1, j1) - (a2 * i2 + b2 * j2)
    f2 = subscript_value(col_a, i1, j1) - (d2 * i2 + e2 * j2)
    ref_a = AffineRef("A", row_a, col_a, is_write=True)
    ref_b = AffineRef(
        "A", Subscript(a2, b2, c2), Subscript(d2, e2, f2),
        is_write=rng.random() < 0.5,
    )

    nest = make_nest([ref_a, ref_b], i_extent, j_extent, part, direction)
    verdict = cross_verdict(ref_a, ref_b, nest, num_cpus)
    assert verdict.status != "clean", (
        f"seeded overlap at ({i1},{j1})/({i2},{j2}) on cpus "
        f"{cpu_of[i1]}/{cpu_of[i2]} reported clean"
    )
    if verdict.status == "race":
        w_i1, w_j1, w_i2, w_j2 = verdict.witness
        assert subscript_value(ref_a.row, w_i1, w_j1) == subscript_value(
            ref_b.row, w_i2, w_j2
        )
        assert subscript_value(ref_a.col, w_i1, w_j1) == subscript_value(
            ref_b.col, w_i2, w_j2
        )
        assert cpu_of[w_i1] != cpu_of[w_i2]


@pytest.mark.parametrize("seed", SEEDS)
def test_boundary_shift_overlap_never_clean(seed):
    """The classic un-declared stencil: read of column i +/- delta."""
    rng = random.Random(seed)
    num_cpus = rng.choice([2, 4, 8, 16])
    i_extent = rng.randrange(2 * num_cpus, 6 * num_cpus)
    j_extent = rng.randrange(2, 65)
    part, direction = random_schedule(rng)
    delta = rng.choice([-2, -1, 1, 2])

    write = AffineRef("A", J(), I(), is_write=True)
    read = AffineRef("A", J(), I(delta))
    nest = make_nest([write, read], i_extent, j_extent, part, direction)
    verdict = cross_verdict(write, read, nest, num_cpus)
    # A |delta| of 1-2 always crosses at least one partition boundary
    # when every processor owns at least one iteration; BLOCKED schedules
    # can leave trailing processors empty but the first boundary remains.
    assert verdict.status == "race"


@pytest.mark.parametrize("seed", SEEDS)
def test_shared_region_write_never_clean(seed):
    """Every processor writes a shared column/row region."""
    rng = random.Random(seed)
    num_cpus = rng.choice([2, 4, 8])
    i_extent = rng.randrange(num_cpus, 4 * num_cpus)
    j_extent = rng.randrange(2, 33)
    part, direction = random_schedule(rng)
    shared_col = rng.randrange(4)

    ref = AffineRef("A", J(), Subscript(const=shared_col), is_write=True)
    nest = make_nest([ref], i_extent, j_extent, part, direction)
    cpu_of = cpu_map(i_extent, num_cpus, part, direction)
    if len(set(cpu_of)) < 2:
        pytest.skip("schedule degenerated to one processor")
    verdict = cross_verdict(ref, ref, nest, num_cpus)
    assert verdict.status == "race"
    assert verdict.is_write_write


@pytest.mark.parametrize("seed", SEEDS)
def test_check_nest_flags_seeded_race_as_error(seed):
    """End to end: a PARALLEL nest with a planted race yields an ERROR."""
    rng = random.Random(seed)
    num_cpus = rng.choice([2, 4, 8])
    i_extent = rng.randrange(2 * num_cpus, 6 * num_cpus)
    j_extent = rng.randrange(2, 33)
    part, direction = random_schedule(rng)

    clean_write = AffineRef("A", J(), I(), is_write=True)
    racy_read = AffineRef("A", J(), I(rng.choice([-1, 1])))
    nest = make_nest([clean_write, racy_read], i_extent, j_extent, part, direction)
    findings = check_nest(nest, num_cpus)
    assert any(d.rule_id in ("A001", "A002") for d in findings)
    assert all(d.rule_id != "A003" for d in findings)  # exact, not budget-bound


@pytest.mark.parametrize("seed", SEEDS)
def test_race_free_partitioned_nest_no_false_positive(seed):
    """The dual property: truly disjoint accesses must report clean."""
    rng = random.Random(seed)
    num_cpus = rng.choice([2, 4, 8, 16])
    i_extent = rng.randrange(num_cpus, 6 * num_cpus)
    j_extent = rng.randrange(2, 65)
    part, direction = random_schedule(rng)

    # Both references touch exactly column i — private per processor.
    write = AffineRef("A", J(), I(), is_write=True)
    read = AffineRef("A", J(rng.randrange(-3, 4)), I())
    nest = make_nest([write, read], i_extent, j_extent, part, direction)
    assert cross_verdict(write, read, nest, num_cpus).status == "clean"
    assert check_nest(nest, num_cpus) == []


@pytest.mark.parametrize("seed", range(20))
def test_parity_disjoint_nest_no_false_positive(seed):
    """GCD-refutable pairs stay clean under random extents/schedules."""
    rng = random.Random(seed)
    num_cpus = rng.choice([2, 4, 8])
    i_extent = rng.randrange(num_cpus, 4 * num_cpus)
    j_extent = rng.randrange(2, 33)
    part, direction = random_schedule(rng)

    even = AffineRef("A", Subscript(i_coef=2), J(), is_write=True)
    odd = AffineRef("A", Subscript(i_coef=2, const=1), J(), is_write=True)
    nest = make_nest([even, odd], i_extent, j_extent, part, direction)
    assert cross_verdict(even, odd, nest, num_cpus).status == "clean"
