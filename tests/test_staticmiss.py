"""Symbolic cache-conflict analyzer: plans, verification, prediction.

Three layers of evidence that the static analyzer tells the truth:

* plan derivation is *exact* — the derived page->color function matches
  the colors an actual run realizes, page for page, for every policy;
* the verifier is *sound* — seeded conflict plans are never declared
  conflict-free, and every witness replays into real conflict misses on
  the cycle-accurate memory system;
* the predictor is *bounded* — simulated runs land inside the predicted
  intervals, and the ``static_check`` engine gate enforces exactly that.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.checker.staticmiss import (
    ConflictWitness,
    MissEstimate,
    Progression,
    StaticCheckError,
    StaticMissProfile,
    StaticPlan,
    conflict_summary,
    derive_static_plan,
    estimate_keys,
    instruction_pages,
    predict_workload,
    program_image,
    replay_witness,
    verify_plan,
)
from repro.machine.config import CacheConfig, MachineConfig, sgi_base
from repro.sim.engine import EngineOptions, _Simulation, run_benchmark
from repro.sim.tracegen import SimProfile
from repro.workloads.specfp import get_workload

CONFIG = sgi_base(4).scaled(16)
FAST = SimProfile.fast()


# ---------------------------------------------------------------------------
# Progressions


class TestProgression:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            Progression(0, 0, 4)
        with pytest.raises(ValueError):
            Progression(0, 8, -1)

    def test_count_below_matches_enumeration(self):
        prog = Progression(start=100, step=24, count=7)
        addrs = [100 + 24 * k for k in range(7)]
        for limit in range(0, 400, 7):
            assert prog.count_below(limit) == sum(a < limit for a in addrs)

    def test_count_in_matches_enumeration(self):
        prog = Progression(start=64, step=40, count=9)
        addrs = [64 + 40 * k for k in range(9)]
        for lo in range(0, 512, 31):
            for span in (0, 13, 40, 127):
                expected = sum(lo <= a < lo + span for a in addrs)
                assert prog.count_in(lo, lo + span) == expected

    def test_empty_progression(self):
        prog = Progression(start=0, step=8, count=0)
        assert prog.count_below(1000) == 0
        assert prog.count_in(0, 1000) == 0


# ---------------------------------------------------------------------------
# Plan derivation: derived colors must equal realized colors


def realized_colors(name: str, config: MachineConfig, options: EngineOptions):
    """Run engine setup + initialization, read back page->color mappings."""
    workload = get_workload(name, scale=config.scale_factor)
    sim = _Simulation(workload.program, config, options)
    if options.cdpc:
        sim.deliver_cdpc()
    sim.run_init()
    realized = {
        vpage: sim.vm.physmem.color_of(frame)
        for vpage, frame in sim.vm.page_table.mappings()
    }
    return workload.program, sim, realized


class TestPlanDerivation:
    def test_page_coloring_is_closed_form(self, scaled_sgi):
        workload = get_workload("swim", scale=scaled_sgi.scale_factor)
        sim = _Simulation(
            workload.program, scaled_sgi, EngineOptions(profile=FAST)
        )
        plan = derive_static_plan(workload.program, sim.layout, scaled_sgi)
        assert plan.policy == "page_coloring"
        assert not plan.colors  # pure vpage % C, nothing explicit
        for vpage in (0, 1, 255, 256, 1 << 30):
            assert plan.color_of(vpage) == vpage % scaled_sgi.num_colors

    def test_unknown_policy_rejected(self, scaled_sgi):
        workload = get_workload("swim", scale=scaled_sgi.scale_factor)
        sim = _Simulation(
            workload.program, scaled_sgi, EngineOptions(profile=FAST)
        )
        with pytest.raises(ValueError, match="unknown mapping policy"):
            derive_static_plan(
                workload.program, sim.layout, scaled_sgi, policy="fifo"
            )
        with pytest.raises(ValueError, match="ColoringResult"):
            derive_static_plan(
                workload.program, sim.layout, scaled_sgi, cdpc=True
            )

    @pytest.mark.parametrize("cdpc", [False, True])
    def test_bin_hopping_plan_matches_engine(self, cdpc):
        """Replay of the fault-order counter is exact, page for page.

        Covers both plain bin hopping and CDPC touch delivery (the
        STANDARD_POLICIES "cdpc" cell): the runtime pre-touches the hint
        order through the same cycling counter.
        """
        config = sgi_base(2).scaled(16)
        options = EngineOptions(
            policy="bin_hopping", cdpc=cdpc, fast_path=True, profile=FAST
        )
        program, sim, realized = realized_colors("swim", config, options)
        plan = derive_static_plan(
            program,
            sim.layout,
            config,
            policy="bin_hopping",
            cdpc=cdpc,
            coloring=sim.runtime.coloring if sim.runtime else None,
            seed=options.seed,
            init_jitter=options.init_jitter,
        )
        assert plan.policy == ("cdpc" if cdpc else "bin_hopping")
        overflow = set(plan.overflow_pages)
        mismatches = [
            vpage
            for vpage, color in realized.items()
            if vpage not in overflow and plan.color_of(vpage) != color
        ]
        assert realized, "initialization mapped no pages"
        assert mismatches == []

    def test_madvise_plan_matches_engine(self):
        """CDPC over page_coloring uses the hint table + modulo fallback."""
        config = sgi_base(2).scaled(16)
        options = EngineOptions(
            policy="page_coloring", cdpc=True, fast_path=True, profile=FAST
        )
        program, sim, realized = realized_colors("tomcatv", config, options)
        plan = derive_static_plan(
            program,
            sim.layout,
            config,
            policy="page_coloring",
            cdpc=True,
            coloring=sim.runtime.coloring,
        )
        overflow = set(plan.overflow_pages)
        mismatches = [
            vpage
            for vpage, color in realized.items()
            if vpage not in overflow and plan.color_of(vpage) != color
        ]
        assert mismatches == []

    def test_jitter_changes_plan_but_seed_reproduces_it(self):
        config = sgi_base(2).scaled(16)
        workload = get_workload("swim", scale=config.scale_factor)
        sim = _Simulation(workload.program, config, EngineOptions(profile=FAST))
        kwargs = dict(policy="bin_hopping", init_jitter=4)
        plan_a = derive_static_plan(
            workload.program, sim.layout, config, seed=1, **kwargs
        )
        plan_b = derive_static_plan(
            workload.program, sim.layout, config, seed=1, **kwargs
        )
        plan_c = derive_static_plan(
            workload.program, sim.layout, config, seed=2, **kwargs
        )
        assert plan_a.colors == plan_b.colors
        assert plan_a.colors != plan_c.colors

    def test_instruction_pages_ascend_above_data(self, scaled_sgi):
        workload = get_workload("fpppp", scale=scaled_sgi.scale_factor)
        pages = instruction_pages(workload.program, scaled_sgi)
        assert pages == sorted(pages)
        assert pages, "fpppp has an instruction footprint"
        from repro.sim.tracegen import INSTRUCTION_BASE

        assert pages[0] * scaled_sgi.page_size >= INSTRUCTION_BASE


# ---------------------------------------------------------------------------
# Verifier soundness


def seeded_conflict_plan(program, layout, config) -> StaticPlan:
    """The adversarial plan: every data page forced onto one color."""
    pages = set()
    for name in layout.bases:
        pages.update(layout.pages(name, config.page_size))
    return StaticPlan(
        policy="adversarial",
        num_colors=config.num_colors,
        colors={vpage: 3 for vpage in pages},
    )


class TestVerifierSoundness:
    @pytest.mark.parametrize("name", ["tomcatv", "swim", "su2cor", "applu"])
    def test_seeded_conflicts_never_proven_free(self, name, scaled_sgi):
        """Zero false 'conflict-free' verdicts on plans built to conflict."""
        workload = get_workload(name, scale=scaled_sgi.scale_factor)
        sim = _Simulation(
            workload.program, scaled_sgi, EngineOptions(profile=FAST)
        )
        image = program_image(
            workload.program, sim.layout, scaled_sgi, scaled_sgi.num_cpus, FAST
        )
        plan = seeded_conflict_plan(workload.program, sim.layout, scaled_sgi)
        verification = verify_plan(image, plan)
        assert not verification.conflict_free
        assert verification.witnesses
        worst = verification.witnesses[0]
        assert worst.excess >= 1
        assert len(worst.pages) > scaled_sgi.l2.associativity
        # Every witness page really maps to the witness color.
        for witness in verification.witnesses:
            for vpage in witness.pages:
                assert plan.color_of(vpage) == witness.color

    def test_fpppp_cdpc_plan_proven_conflict_free(self):
        """fpppp's footprint fits: the verifier must PROVE it, not hedge."""
        prediction = predict_workload(
            "fpppp", CONFIG, policy="bin_hopping", cdpc=True, profile=FAST
        )
        assert prediction.verification.conflict_free
        assert prediction.verification.witnesses == []
        assert prediction.verification.sets_checked > 0
        assert (
            prediction.verification.max_occupancy <= CONFIG.l2.associativity
        )

    def test_witness_replay_reproduces_conflicts(self):
        """A constructed witness is not rhetorical: replaying its pages
        through the real memory system produces CONFLICT-classified misses.
        """
        prediction = predict_workload(
            "tomcatv", CONFIG, policy="bin_hopping", cdpc=True, profile=FAST
        )
        assert not prediction.verification.conflict_free
        witness = prediction.verification.witnesses[0]
        counts = replay_witness(witness, CONFIG)
        assert counts["conflict"] > 0

    def test_witness_replay_on_two_way_cache(self):
        config = replace(
            CONFIG, l2=CacheConfig(CONFIG.l2.size, CONFIG.l2.line_size, 2)
        )
        prediction = predict_workload(
            "tomcatv", config, policy="page_coloring", profile=FAST
        )
        assert prediction.verification.witnesses
        counts = replay_witness(prediction.verification.witnesses[0], config)
        assert counts["conflict"] > 0

    def test_replay_rejects_non_overflowing_witness(self):
        witness = ConflictWitness(
            cpu=0, color=0, line_index=0, pages=(1,), arrays=("a",), excess=0
        )
        with pytest.raises(ValueError):
            replay_witness(witness, CONFIG)


# ---------------------------------------------------------------------------
# Conflict summary (the S-rule backend)


class TestConflictSummary:
    def test_summary_reports_balanced_and_skew(self, scaled_sgi):
        workload = get_workload("su2cor", scale=scaled_sgi.scale_factor)
        sim = _Simulation(
            workload.program, scaled_sgi, EngineOptions(profile=FAST)
        )
        image = program_image(
            workload.program, sim.layout, scaled_sgi, scaled_sgi.num_cpus, FAST
        )
        summary = conflict_summary(image)
        assert summary.plan.policy == "page_coloring"
        assert summary.max_occupancy >= 1
        for hotspot in summary.hotspots:
            assert hotspot.occupancy > hotspot.balanced
            assert hotspot.skew > 1.0
            payload = hotspot.to_dict()
            assert payload["pages"] == list(hotspot.pages)


# ---------------------------------------------------------------------------
# Prediction and the static_check gate


class TestPrediction:
    @pytest.fixture(scope="class")
    def prediction(self):
        return predict_workload(
            "hydro2d", CONFIG, policy="page_coloring", profile=FAST
        )

    def test_estimates_cover_all_kinds(self, prediction):
        assert set(prediction.estimates) == set(estimate_keys())
        total = prediction.estimate("total")
        assert total.lo <= total.predicted <= total.hi
        assert prediction.predicted_total() == total.predicted

    def test_components_do_not_exceed_total_ceiling(self, prediction):
        total = prediction.estimate("total")
        for kind in ("cold", "conflict", "capacity"):
            assert prediction.estimate(kind).predicted <= total.hi

    def test_to_dict_is_json_clean(self, prediction):
        import json

        payload = prediction.to_dict()
        text = json.dumps(payload)
        assert json.loads(text)["workload"] == "hydro2d"
        assert set(payload["estimates"]) == set(estimate_keys())
        assert payload["analyze_ns"] > 0

    def test_simulation_lands_inside_bounds(self, prediction):
        result = run_benchmark(
            "hydro2d", CONFIG, EngineOptions(profile=FAST)
        )
        assert prediction.check(result) == []
        measured = StaticMissProfile.measured_from(result)
        assert measured["total"] == float(result.stats.total_l2_misses())

    def test_tampered_bound_is_violated(self, prediction):
        result = run_benchmark(
            "hydro2d", CONFIG, EngineOptions(profile=FAST)
        )
        tampered = replace(
            prediction,
            estimates={
                **prediction.estimates,
                "total": MissEstimate(predicted=0.0, lo=0.0, hi=0.0),
            },
        )
        violations = tampered.check(result)
        assert violations and "total" in violations[0]


class TestMissEstimate:
    def test_contains_and_bound(self):
        estimate = MissEstimate(predicted=100.0, lo=50.0, hi=150.0)
        assert estimate.contains(50.0)
        assert estimate.contains(150.0)
        assert not estimate.contains(150.1)
        assert estimate.bound == 50.0


class TestStaticCheckGate:
    def test_gate_attaches_profile_and_passes(self):
        config = sgi_base(2).scaled(16)
        result = run_benchmark(
            "hydro2d",
            config,
            EngineOptions(static_check=True, profile=FAST),
        )
        profile = result.static_check
        assert isinstance(profile, StaticMissProfile)
        assert profile.check(result) == []
        assert profile.analyze_ns > 0
        # The gate must not leak into the bit-identity contract.
        assert "static_check" not in result.to_dict()

    def test_gate_checks_cdpc_over_bin_hopping(self):
        config = sgi_base(2).scaled(16)
        result = run_benchmark(
            "swim",
            config,
            EngineOptions(
                policy="bin_hopping", cdpc=True, static_check=True, profile=FAST
            ),
        )
        assert result.static_check.policy == "cdpc"

    @pytest.mark.parametrize(
        "overrides",
        [
            {"prefetch": True},
            {"dynamic_recolor": True},
            {"memory_pressure": 0.5},
            {"sampling": "access_vector"},
            {"race_seed": 7},
        ],
    )
    def test_unsupported_combinations_rejected(self, overrides):
        config = sgi_base(2).scaled(16)
        with pytest.raises(ValueError, match="static_check"):
            run_benchmark(
                "hydro2d",
                config,
                EngineOptions(static_check=True, profile=FAST, **overrides),
            )

    def test_cdpc_requires_native_delivery(self):
        config = sgi_base(2).scaled(16)
        with pytest.raises(ValueError, match="delivery"):
            run_benchmark(
                "swim",
                config,
                EngineOptions(
                    policy="bin_hopping",
                    cdpc=True,
                    cdpc_delivery="madvise",
                    static_check=True,
                    profile=FAST,
                ),
            )

    def test_violated_bound_raises_static_check_error(self, monkeypatch):
        """If the simulator escapes the interval the run must fail loudly."""
        import repro.checker.staticmiss as staticmiss

        real = staticmiss.predict_program

        def sabotaged(*args, **kwargs):
            profile = real(*args, **kwargs)
            return replace(
                profile,
                estimates={
                    key: MissEstimate(predicted=0.0, lo=0.0, hi=0.0)
                    for key in profile.estimates
                },
            )

        monkeypatch.setattr(staticmiss, "predict_program", sabotaged)
        config = sgi_base(2).scaled(16)
        with pytest.raises(StaticCheckError) as excinfo:
            run_benchmark(
                "hydro2d",
                config,
                EngineOptions(static_check=True, profile=FAST),
            )
        assert excinfo.value.violations
        assert isinstance(excinfo.value.profile, StaticMissProfile)
