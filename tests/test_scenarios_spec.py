"""Tests for the scenario DSL: specs, lowering, presets, generation."""

import pytest

from repro.scenarios.churn import ChurnAction, ChurnDriver, ChurnSchedule
from repro.scenarios.spec import (
    PRESETS,
    CapacityEvent,
    JobSpec,
    ScenarioSpec,
    coerce_spec,
    compile_churn,
    generate_scenario,
    iter_presets,
    preset,
)


class TestJobSpec:
    def test_round_trip(self):
        job = JobSpec("j", arrive_beat=1, depart_beat=4, frames=0.25,
                      color_skew=0.5)
        assert JobSpec.from_dict(job.to_dict()) == job

    def test_validation(self):
        with pytest.raises(ValueError, match="arrive_beat"):
            JobSpec("j", arrive_beat=-1, depart_beat=2, frames=10)
        with pytest.raises(ValueError, match="depart_beat"):
            JobSpec("j", arrive_beat=3, depart_beat=3, frames=10)
        with pytest.raises(ValueError, match="frames"):
            JobSpec("j", arrive_beat=0, depart_beat=1, frames=0)
        with pytest.raises(ValueError, match="color_skew"):
            JobSpec("j", arrive_beat=0, depart_beat=1, frames=1, color_skew=2.0)


class TestCapacityEvent:
    def test_round_trip(self):
        event = CapacityEvent(beat=3, delta_frames=-0.4)
        assert CapacityEvent.from_dict(event.to_dict()) == event

    def test_validation(self):
        with pytest.raises(ValueError, match="beat"):
            CapacityEvent(beat=-1, delta_frames=1)
        with pytest.raises(ValueError, match="nonzero"):
            CapacityEvent(beat=0, delta_frames=0)


class TestScenarioSpec:
    def test_round_trip_is_byte_identical(self):
        spec = preset("smoke")
        rehydrated = ScenarioSpec.from_dict(spec.to_dict())
        assert rehydrated == spec
        assert rehydrated.to_dict() == spec.to_dict()

    def test_round_trip_defaults(self):
        spec = ScenarioSpec(name="bare")
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        assert ScenarioSpec.from_dict({"name": "bare"}) == spec

    def test_duplicate_job_names_rejected(self):
        job = JobSpec("twin", arrive_beat=0, depart_beat=2, frames=10)
        with pytest.raises(ValueError, match="duplicate"):
            ScenarioSpec(name="dup", jobs=(job, job))

    def test_validation(self):
        with pytest.raises(ValueError, match="name"):
            ScenarioSpec(name="")
        with pytest.raises(ValueError, match="seed"):
            ScenarioSpec(name="x", seed=-1)
        with pytest.raises(ValueError, match="repeat_beats"):
            ScenarioSpec(name="x", repeat_beats=-1)

    def test_specs_are_hashable(self):
        assert len({preset("smoke"), preset("smoke"), preset("churn")}) == 2


class TestCompileChurn:
    def test_jobs_become_seize_release_pairs(self):
        spec = ScenarioSpec(
            name="one-job",
            jobs=(JobSpec("j", arrive_beat=1, depart_beat=3, frames=16,
                          color_skew=0.5),),
        )
        schedule = compile_churn(spec)
        assert [(a.beat, a.op) for a in schedule.actions] == [
            (1, "seize"), (3, "release"),
        ]
        assert schedule.actions[0].skew == 0.5

    def test_capacity_events_become_revoke_restore(self):
        spec = ScenarioSpec(
            name="cap",
            capacity_events=(
                CapacityEvent(beat=2, delta_frames=-8),
                CapacityEvent(beat=4, delta_frames=8),
            ),
        )
        ops = [(a.beat, a.op) for a in compile_churn(spec).actions]
        assert ops == [(2, "revoke"), (4, "restore")]

    def test_same_beat_execution_order(self):
        # Departures free capacity before same-beat demand; revocation,
        # the hardest case, lands last.
        spec = ScenarioSpec(
            name="same-beat",
            jobs=(
                JobSpec("leaving", arrive_beat=0, depart_beat=2, frames=8),
                JobSpec("arriving", arrive_beat=2, depart_beat=5, frames=8),
            ),
            capacity_events=(
                CapacityEvent(beat=2, delta_frames=-4),
                CapacityEvent(beat=2, delta_frames=2),
            ),
        )
        at_beat_2 = [a.op for a in compile_churn(spec).actions if a.beat == 2]
        assert at_beat_2 == ["release", "restore", "seize", "revoke"]

    def test_lowering_is_pure(self):
        spec = preset("churn")
        assert compile_churn(spec) == compile_churn(spec)

    def test_seed_and_repeat_carry_through(self):
        spec = ScenarioSpec(name="x", seed=42, repeat_beats=6)
        schedule = compile_churn(spec)
        assert schedule.seed == 42
        assert schedule.repeat_beats == 6


class TestGenerateScenario:
    def test_same_seed_same_spec(self):
        a = generate_scenario("g", seed=5, num_jobs=3, beats=8)
        b = generate_scenario("g", seed=5, num_jobs=3, beats=8)
        assert a == b

    def test_different_seed_different_spec(self):
        a = generate_scenario("g", seed=5, num_jobs=3, beats=8)
        b = generate_scenario("g", seed=6, num_jobs=3, beats=8)
        assert a != b

    def test_generated_spec_is_valid_and_lowerable(self):
        spec = generate_scenario("g", seed=1, num_jobs=4, beats=12)
        assert len(spec.jobs) == 4
        schedule = compile_churn(spec)
        assert schedule.active
        # One shrink, one later grow.
        revokes = [a for a in schedule.actions if a.op == "revoke"]
        restores = [a for a in schedule.actions if a.op == "restore"]
        assert len(revokes) == len(restores) == 1
        assert restores[0].beat > revokes[0].beat

    def test_beats_validation(self):
        with pytest.raises(ValueError, match="beats"):
            generate_scenario("g", beats=1)


class TestPresets:
    def test_every_preset_resolves(self):
        for name, spec in iter_presets():
            assert name in PRESETS
            assert spec.name == name
            assert compile_churn(spec).active

    def test_smoke_exercises_every_churn_path(self):
        ops = {a.op for a in compile_churn(preset("smoke")).actions}
        assert ops == {"seize", "release", "revoke", "restore"}

    def test_smoke_has_pre_init_arrival(self):
        schedule = compile_churn(preset("smoke"))
        assert any(a.beat == 0 and a.op == "seize" for a in schedule.actions)

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError, match="unknown scenario preset"):
            preset("nope")


class TestCoerceSpec:
    def test_accepts_spec_dict_and_name(self):
        spec = preset("smoke")
        assert coerce_spec(spec) is spec
        assert coerce_spec(spec.to_dict()) == spec
        assert coerce_spec("smoke") == spec

    def test_rejects_other_types(self):
        with pytest.raises(TypeError, match="ScenarioSpec"):
            coerce_spec(42)


class TestChurnSchedule:
    def test_fractional_amount_resolves_against_total(self):
        action = ChurnAction(beat=0, op="revoke", amount=0.25)
        assert action.resolve(64) == 16
        assert ChurnAction(beat=0, op="revoke", amount=8).resolve(64) == 8

    def test_action_validation(self):
        with pytest.raises(ValueError, match="op"):
            ChurnAction(beat=0, op="steal", amount=1)
        with pytest.raises(ValueError, match="amount"):
            ChurnAction(beat=0, op="seize", amount=0)
        with pytest.raises(ValueError, match="skew"):
            ChurnAction(beat=0, op="seize", amount=1, skew=1.5)

    def test_horizon(self):
        schedule = ChurnSchedule(actions=(
            ChurnAction(beat=2, op="seize", amount=4),
            ChurnAction(beat=7, op="release", amount=4),
        ))
        assert schedule.horizon == 7
        assert ChurnSchedule().horizon == 0
        assert not ChurnSchedule().active

    def test_repr_is_deterministic(self):
        # Campaign fingerprints hash repr(task); the schedule inside the
        # task options must repr identically across processes.
        spec = preset("churn")
        assert repr(compile_churn(spec)) == repr(compile_churn(spec))


class TestChurnDriver:
    def _physmem(self, frames=64, colors=8):
        from repro.osmodel.physmem import PhysicalMemory

        return PhysicalMemory(num_frames=frames, num_colors=colors)

    def test_beats_execute_in_order_and_record_timeline(self):
        schedule = ChurnSchedule(actions=(
            ChurnAction(beat=0, op="seize", amount=16, skew=1.0),
            ChurnAction(beat=1, op="revoke", amount=0.25),
            ChurnAction(beat=2, op="restore", amount=0.25),
            ChurnAction(beat=3, op="release", amount=16),
        ))
        pm = self._physmem()
        driver = ChurnDriver(schedule=schedule, physmem=pm)
        for _ in range(4):
            driver.on_beat()
        assert driver.frames_seized == 16
        assert driver.frames_revoked == 16
        assert driver.frames_restored == 16
        assert driver.frames_released == 16
        assert pm.free_frames() == 64
        beats = [row[0] for row in driver.timeline]
        assert beats == [0, 1, 2, 3]
        capacities = [row[1] for row in driver.timeline]
        assert capacities == [64, 48, 64, 64]

    def test_skewed_seize_concentrates_on_low_colors(self):
        schedule = ChurnSchedule(actions=(
            ChurnAction(beat=0, op="seize", amount=24, skew=1.0),
        ))
        pm = self._physmem()
        ChurnDriver(schedule=schedule, physmem=pm).on_beat()
        low_band = set(range(4))
        held_low = sum(
            1 for f in pm.held_frames() if pm.color_of(f) in low_band
        )
        assert held_low == 24  # 4 colors * 8 frames per color > 24

    def test_repeat_wraps_beats(self):
        schedule = ChurnSchedule(
            actions=(ChurnAction(beat=0, op="seize", amount=4),),
            repeat_beats=2,
        )
        pm = self._physmem()
        driver = ChurnDriver(schedule=schedule, physmem=pm)
        for _ in range(4):
            driver.on_beat()
        assert driver.frames_seized == 8  # beats 0 and 2 both fire

    def test_driver_replays_identically(self):
        schedule = compile_churn(preset("smoke"))

        def trace():
            pm = self._physmem(frames=256, colors=8)
            driver = ChurnDriver(schedule=schedule, physmem=pm)
            for _ in range(schedule.horizon + 1):
                driver.on_beat()
            return driver.timeline, sorted(pm.held_frames())

        assert trace() == trace()

    def test_revoke_shortfall_is_recorded_not_raised(self):
        pm = self._physmem(frames=8, colors=8)
        pm.occupy_fraction(1.0, seed=0)
        for frame in sorted(pm.held_frames()):
            pm._held.discard(frame)
            pm._allocated.add(frame)  # simulate fully mapped memory
        schedule = ChurnSchedule(actions=(
            ChurnAction(beat=0, op="revoke", amount=4),
        ))
        driver = ChurnDriver(schedule=schedule, physmem=pm)
        driver.on_beat()  # must not raise
        assert pm.revocation_shortfall == 4
