"""Tests for crash-safe scenario execution across the comparison modes."""

import pytest

from repro.harness.campaign import CampaignOptions
from repro.machine.config import sgi_base
from repro.scenarios import (
    SCENARIO_MODES,
    ScenarioSpec,
    CapacityEvent,
    JobSpec,
    run_scenario,
    scenario_tasks,
)
from repro.sim.engine import EngineOptions
from repro.sim.tracegen import SimProfile


@pytest.fixture(scope="module")
def config():
    return sgi_base(2).scaled(4)


@pytest.fixture(scope="module")
def spec():
    """A tiny but complete scenario: arrival, revocation, restore."""
    return ScenarioSpec(
        name="tiny",
        workload="fpppp",
        seed=3,
        jobs=(JobSpec("co", arrive_beat=0, depart_beat=4, frames=0.3,
                      color_skew=0.8),),
        capacity_events=(
            CapacityEvent(beat=1, delta_frames=-0.25),
            CapacityEvent(beat=3, delta_frames=0.25),
        ),
    )


@pytest.fixture(scope="module")
def options():
    return EngineOptions(profile=SimProfile.fast())


class TestScenarioTasks:
    def test_one_task_per_mode(self, config, spec, options):
        labels, tasks = scenario_tasks(spec, config, options=options)
        assert labels == list(SCENARIO_MODES)
        assert len(tasks) == len(labels)

    def test_tasks_embed_churn_and_seed(self, config, spec, options):
        _, tasks = scenario_tasks(spec, config, options=options)
        for _workload, _config, opts in tasks:
            assert opts.churn is not None and opts.churn.active
            assert opts.seed == spec.seed
            assert opts.epochs >= opts.churn.horizon + 2

    def test_tasks_are_fingerprintable(self, config, spec, options):
        from repro.harness.store import task_fingerprint

        _, tasks = scenario_tasks(spec, config, options=options)
        prints = [task_fingerprint(task) for task in tasks]
        assert len(set(prints)) == len(prints)  # modes differ
        _, again = scenario_tasks(spec, config, options=options)
        assert [task_fingerprint(t) for t in again] == prints

    def test_mode_overrides_applied(self, config, spec, options):
        labels, tasks = scenario_tasks(spec, config, options=options)
        by_label = dict(zip(labels, tasks))
        assert by_label["cdpc-adaptive"][2].adaptive_cdpc is True
        assert by_label["dynamic-recolor"][2].adaptive_cdpc is False
        assert by_label["bin-hopping"][2].policy == "bin_hopping"


class TestRunScenario:
    #: Two modes keep the determinism matrix cheap; the full three-mode
    #: comparison runs in benchmarks/test_churn_scenarios.py.
    MODES = {
        "cdpc-adaptive": SCENARIO_MODES["cdpc-adaptive"],
        "bin-hopping": SCENARIO_MODES["bin-hopping"],
    }

    @pytest.fixture(scope="class")
    def serial(self, config, spec, options):
        return run_scenario(
            spec, config, options=options, modes=self.MODES, max_workers=1
        )

    def test_report_covers_every_mode(self, serial):
        assert sorted(serial.results) == sorted(self.MODES)
        for result in serial.results.values():
            assert result.wall_ns > 0
            assert result.degradation is not None

    def test_churn_actually_fired(self, serial):
        for result in serial.results.values():
            degradation = result.degradation
            assert degradation.frames_revoked > 0
            assert degradation.frames_restored > 0
            assert degradation.frames_seized > 0
            assert degradation.capacity_timeline

    def test_serial_equals_parallel(self, serial, config, spec, options):
        parallel = run_scenario(
            spec, config, options=options, modes=self.MODES, max_workers=2
        )
        for label in self.MODES:
            assert (
                parallel.results[label].to_dict()
                == serial.results[label].to_dict()
            )

    def test_resume_after_kill_equals_serial(
        self, serial, config, spec, options, tmp_path
    ):
        # A SIGKILL mid-campaign leaves some results durable and some
        # missing; resuming must serve the durable ones byte-identically
        # and recompute the rest.  Model the partial state by running one
        # mode into the store, then the full scenario over the same store.
        store = str(tmp_path / "campaign")
        first = dict(self.MODES)
        partial = {"cdpc-adaptive": first.pop("cdpc-adaptive")}
        run_scenario(
            spec, config, options=options, modes=partial, max_workers=1,
            campaign=CampaignOptions(store=store),
        )
        resumed = run_scenario(
            spec, config, options=options, modes=self.MODES, max_workers=1,
            campaign=CampaignOptions(store=store),
        )
        assert resumed.campaign.report.loaded == 1
        for label in self.MODES:
            assert (
                resumed.results[label].to_dict()
                == serial.results[label].to_dict()
            )

    def test_report_to_dict_and_figure(self, serial):
        payload = serial.to_dict()
        assert payload["scenario"] == serial.spec.to_dict()
        assert sorted(payload["honor_rates"]) == sorted(self.MODES)
        assert "campaign" in payload
        figure = serial.figure(width=20)
        assert "hint honor rate" in figure
        assert "capacity timeline" in figure

    def test_churn_events_visible(self, serial):
        events = serial.churn_events()
        assert events
        assert {event["kind"] for event in events} <= {
            "churn", "capacity_revoked", "capacity_restored"
        }

    def test_graceful_mode_failure_with_campaign_options(
        self, config, options
    ):
        bad_spec = ScenarioSpec(name="bad", workload="nosuchworkload")
        outcome = run_scenario(
            bad_spec, config, options=options, modes=self.MODES,
            campaign=CampaignOptions(),
        )
        assert outcome.results == {}
        assert len(outcome.campaign.report.failures) == len(self.MODES)
