"""Tests for the asyncio ColoringService: admission, batching, caching,
deadlines, coalescing, degradation, drain."""

import asyncio
import threading

import pytest

from repro.harness.campaign import Campaign
from repro.harness.report import CampaignReport
from repro.service import (
    ColoringRequest,
    ColoringService,
    RequestKind,
    Status,
)
from repro.service.engines import run_service_batch


class FakeClock:
    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def synthetic(key, tenant="default", deadline_s=None, request_id=None, **knobs):
    knobs = {"key": key, **knobs}
    return ColoringRequest(
        kind=RequestKind.SYNTHETIC,
        workload="w",
        tenant=tenant,
        deadline_s=deadline_s,
        request_id=request_id,
        synthetic=tuple(sorted(knobs.items())),
    )


def service(**overrides):
    defaults = dict(engine="synthetic", batch_window_s=0.001)
    defaults.update(overrides)
    return ColoringService(**defaults)


class TestAdmission:
    def test_submit_before_start_raises(self):
        svc = service()

        async def main():
            with pytest.raises(RuntimeError, match="not started"):
                await svc.submit(synthetic("a"))

        asyncio.run(main())

    def test_synthetic_kind_needs_the_synthetic_engine(self):
        async def main():
            async with ColoringService(batch_window_s=0.001) as svc:
                return await svc.submit(synthetic("a"))

        response = asyncio.run(main())
        assert response.status == Status.REJECTED
        assert response.reason == "bad_request"

    def test_quota_rejection_carries_retry_hint(self):
        clock = FakeClock()

        async def main():
            async with service(
                quota_rate=1.0, quota_burst=1.0, clock=clock
            ) as svc:
                first = await svc.submit(synthetic("a", tenant="t"))
                second = await svc.submit(synthetic("b", tenant="t"))
                other = await svc.submit(synthetic("c", tenant="other"))
                return first, second, other

        first, second, other = asyncio.run(main())
        assert first.status == Status.OK
        assert second.status == Status.REJECTED
        assert second.reason == "quota"
        assert second.retry_after_s is not None and second.retry_after_s > 0
        # The flooding tenant's empty bucket must not shed anyone else.
        assert other.status == Status.OK

    def test_bounded_queue_sheds_with_overload(self):
        started = threading.Event()
        release = threading.Event()

        def runner(tasks, keys, **kwargs):
            started.set()
            assert release.wait(10)
            return run_service_batch(tasks, keys, **kwargs)

        async def main():
            # With one batch running ("a"), the batcher holds one more
            # ("b") while blocked on the concurrency gate, and the queue
            # bounds the rest: "c" fills it, "d" must be shed.
            async with service(
                queue_limit=1,
                max_batch=1,
                max_concurrent_batches=1,
                runner=runner,
            ) as svc:
                loop = asyncio.get_running_loop()
                admitted = [asyncio.ensure_future(svc.submit(synthetic("a")))]
                await loop.run_in_executor(None, started.wait, 10)
                admitted.append(asyncio.ensure_future(svc.submit(synthetic("b"))))
                await asyncio.sleep(0.05)  # batcher now holds "b" at the gate
                admitted.append(asyncio.ensure_future(svc.submit(synthetic("c"))))
                await asyncio.sleep(0.05)  # "c" sits in the bounded queue
                shed = await svc.submit(synthetic("d"))
                assert not svc.ready()["ready"]
                release.set()
                return await asyncio.gather(*admitted), shed

        admitted, shed = asyncio.run(main())
        assert [response.status for response in admitted] == [Status.OK] * 3
        assert shed.status == Status.REJECTED
        assert shed.reason == "overload"


class TestCachingAndCoalescing:
    def test_repeat_is_answered_from_cache_without_new_work(self):
        async def main():
            async with service() as svc:
                first = await svc.submit(synthetic("hot"))
                second = await svc.submit(synthetic("hot"))
                return first, second, svc.metrics_snapshot()["counters"]

        first, second, counters = asyncio.run(main())
        assert first.status == Status.OK and not first.cached
        assert second.status == Status.OK and second.cached
        assert second.result == first.result
        # O(1) proof: one batch total, and the repeat shows as a cache hit.
        assert counters["service.batches"] == 1
        assert counters["service.cache.hits"] == 1

    def test_identical_inflight_requests_coalesce(self):
        async def main():
            async with service() as svc:
                one, two = await asyncio.gather(
                    svc.submit(synthetic("same")),
                    svc.submit(synthetic("same")),
                )
                return one, two, svc.metrics_snapshot()["counters"]

        one, two, counters = asyncio.run(main())
        assert one.status == Status.OK and two.status == Status.OK
        assert one.result == two.result
        assert sorted([one.coalesced, two.coalesced]) == [False, True]
        assert counters["service.coalesced"] == 1
        assert counters["service.batches"] == 1

    def test_degraded_answers_are_never_cached(self):
        clock = FakeClock()

        async def main():
            async with service(
                breaker_threshold=1, breaker_recovery_s=60.0, clock=clock
            ) as svc:
                tripping = await svc.submit(synthetic("bad", chaos="fail"))
                # Breaker for "synthetic:w" is now open: same question
                # twice must be degraded twice — the fallback answer must
                # not have been cached as the real one.
                first = await svc.submit(synthetic("q"))
                second = await svc.submit(synthetic("q"))
                return tripping, first, second

        tripping, first, second = asyncio.run(main())
        assert tripping.status == Status.DEGRADED
        assert tripping.reason == "worker_failure"
        assert first.status == Status.DEGRADED
        assert first.reason == "circuit_open"
        assert second.status == Status.DEGRADED
        assert not second.cached


class TestDeadlines:
    def test_expired_queued_request_is_rejected(self):
        clock = FakeClock()
        started = threading.Event()
        release = threading.Event()

        def runner(tasks, keys, **kwargs):
            started.set()
            assert release.wait(10)
            return run_service_batch(tasks, keys, **kwargs)

        async def main():
            async with service(
                max_batch=1, max_concurrent_batches=1, runner=runner, clock=clock
            ) as svc:
                loop = asyncio.get_running_loop()
                blocker = asyncio.ensure_future(svc.submit(synthetic("a")))
                await loop.run_in_executor(None, started.wait, 10)
                doomed = asyncio.ensure_future(
                    svc.submit(synthetic("b", deadline_s=1.0))
                )
                await asyncio.sleep(0.05)
                clock.advance(2.0)  # "b" expires while queued
                release.set()
                return await blocker, await doomed

        blocker, doomed = asyncio.run(main())
        assert blocker.status == Status.OK
        assert doomed.status == Status.REJECTED
        assert doomed.reason == "deadline"

    def test_deadline_bounds_the_task_watchdog(self):
        clock = FakeClock()
        seen: dict = {}

        def runner(tasks, keys, **kwargs):
            seen["timeout_s"] = kwargs["timeout_s"]
            results = [{"kind": "synthetic", "value": "stub"} for _ in tasks]
            return Campaign(
                results=results,
                report=CampaignReport(total=len(tasks), completed=len(tasks)),
            )

        async def main():
            async with service(
                runner=runner, clock=clock, task_timeout_s=30.0
            ) as svc:
                return await svc.submit(synthetic("a", deadline_s=2.0))

        response = asyncio.run(main())
        assert response.status == Status.OK
        assert seen["timeout_s"] == pytest.approx(2.0, abs=0.5)


class TestDegradation:
    def test_breaker_trips_and_recovers_via_probe(self):
        clock = FakeClock()

        async def main():
            async with service(
                breaker_threshold=2, breaker_recovery_s=5.0, clock=clock
            ) as svc:
                for key in ("f1", "f2"):
                    await svc.submit(synthetic(key, chaos="fail"))
                assert svc.health()["breakers"]["synthetic:w"] == "open"
                degraded = await svc.submit(synthetic("during"))
                clock.advance(5.0)
                probe = await svc.submit(synthetic("probe"))
                after = svc.health()["breakers"]["synthetic:w"]
                counters = svc.metrics_snapshot()["counters"]
                return degraded, probe, after, counters

        degraded, probe, after, counters = asyncio.run(main())
        assert degraded.status == Status.DEGRADED
        assert degraded.reason == "circuit_open"
        assert degraded.result is not None
        assert degraded.result["fallback"] == "static"
        assert probe.status == Status.OK and not probe.cached
        assert after == "closed"
        assert counters["service.fallback.static"] >= 1
        assert counters["service.failures.exception"] == 2

    def test_simulate_falls_back_to_the_static_predictor(self):
        def runner(tasks, keys, **kwargs):
            raise RuntimeError("pool exploded")

        async def main():
            async with ColoringService(
                batch_window_s=0.001, runner=runner
            ) as svc:
                return await svc.submit(
                    ColoringRequest(workload="fpppp", cpus=2, scale=8)
                )

        response = asyncio.run(main())
        assert response.status == Status.DEGRADED
        assert response.reason == "worker_failure"
        assert response.result is not None
        assert response.result["kind"] == "predict"
        assert response.result["fallback"] == "static"

    def test_predict_with_no_fallback_fails_honestly(self):
        def runner(tasks, keys, **kwargs):
            raise RuntimeError("pool exploded")

        async def main():
            async with ColoringService(
                batch_window_s=0.001, runner=runner
            ) as svc:
                return await svc.submit(
                    ColoringRequest(workload="fpppp", kind="predict")
                )

        response = asyncio.run(main())
        assert response.status == Status.FAILED
        assert response.reason == "worker_failure"


class TestDrain:
    def test_drain_shreds_queue_finishes_inflight_rejects_new(self):
        started = threading.Event()
        release = threading.Event()

        def runner(tasks, keys, **kwargs):
            started.set()
            assert release.wait(10)
            return run_service_batch(tasks, keys, **kwargs)

        async def main():
            svc = service(
                max_batch=1, max_concurrent_batches=1, runner=runner
            )
            await svc.start()
            loop = asyncio.get_running_loop()
            inflight = asyncio.ensure_future(svc.submit(synthetic("a")))
            await loop.run_in_executor(None, started.wait, 10)
            queued = asyncio.ensure_future(svc.submit(synthetic("b")))
            await asyncio.sleep(0.05)
            drain = asyncio.ensure_future(svc.drain())
            await asyncio.sleep(0.05)
            assert svc.health()["status"] == "draining"
            late = await svc.submit(synthetic("c"))
            release.set()
            await drain
            assert svc.health()["status"] == "stopped"
            with pytest.raises(RuntimeError, match="not started"):
                await svc.submit(synthetic("d"))
            return await inflight, await queued, late

        inflight, queued, late = asyncio.run(main())
        assert inflight.status == Status.OK  # in-flight work completes
        assert queued.status == Status.REJECTED  # queued work is shed...
        assert queued.reason == "shutdown"
        assert late.status == Status.REJECTED  # ...and so are new arrivals
        assert late.reason == "shutdown"

    def test_context_manager_drains_cleanly_when_idle(self):
        async def main():
            async with service() as svc:
                assert svc.health()["status"] == "ok"
                assert svc.ready()["ready"]
            assert svc.health()["status"] == "stopped"
            assert not svc.ready()["ready"]

        asyncio.run(main())


class TestDurableStore:
    def test_answers_survive_a_service_restart(self, tmp_path):
        store = str(tmp_path / "plans")
        request = synthetic("durable")

        async def first_life():
            async with service(store=store) as svc:
                response = await svc.submit(request)
                assert response.status == Status.OK and not response.cached
                return response.result

        async def second_life():
            async with service(store=store) as svc:
                response = await svc.submit(request)
                counters = svc.metrics_snapshot()["counters"]
                return response, counters

        original = asyncio.run(first_life())
        response, counters = asyncio.run(second_life())
        assert response.status == Status.OK
        assert response.cached  # promoted from the durable tier
        assert response.result == original
        assert counters.get("service.batches", 0) == 0  # no recompute
