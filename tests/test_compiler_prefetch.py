"""Tests for locality analysis and the prefetch-insertion pass."""

from repro.compiler.ir import (
    ArrayDecl,
    Loop,
    LoopKind,
    PartitionedAccess,
    Phase,
    Program,
    StridedAccess,
)
from repro.compiler.locality import analyze_program, dominant_stride, per_cpu_footprint
from repro.compiler.padding import layout_arrays
from repro.compiler.prefetch_pass import insert_prefetches
from repro.machine.config import CacheConfig, MachineConfig


def machine() -> MachineConfig:
    return MachineConfig(
        num_cpus=4,
        page_size=256,
        l1d=CacheConfig(512, 64, 2),
        l1i=CacheConfig(512, 64, 2),
        l2=CacheConfig(4096, 64, 1),
    )


def streaming_program(size=64 * 1024, tiled=False):
    decls = (ArrayDecl("big", size), ArrayDecl("small", 1024))
    loop = Loop(
        "stream",
        LoopKind.PARALLEL,
        (
            PartitionedAccess("big", units=16, is_write=True),
            PartitionedAccess("small", units=16),
        ),
        tiled=tiled,
    )
    return Program("p", decls, (Phase("ph", (loop,)),))


class TestLocality:
    def test_footprint_partitioned(self):
        program = streaming_program()
        layout = layout_arrays(program.arrays, 64, 512)
        access = program.phases[0].loops[0].accesses[0]
        assert per_cpu_footprint(access, layout, 4) == 16 * 1024

    def test_footprint_strided_spreads_over_cpus(self):
        decls = (ArrayDecl("x", 4096),)
        layout = layout_arrays(decls, 64, 512)
        access = StridedAccess("x", block_bytes=256)
        assert per_cpu_footprint(access, layout, 4) == 1024

    def test_stride_strided_scales_with_cpus(self):
        decls = (ArrayDecl("x", 4096),)
        layout = layout_arrays(decls, 64, 512)
        access = StridedAccess("x", block_bytes=256)
        assert dominant_stride(access, layout, 4) == 1024

    def test_tiled_access_has_unit_stride(self):
        decls = (ArrayDecl("x", 4096),)
        layout = layout_arrays(decls, 64, 512)
        access = PartitionedAccess("x", units=16, fraction=0.5)
        assert dominant_stride(access, layout, 4) == 256

    def test_likely_misses_flags_streaming_arrays(self):
        program = streaming_program()
        layout = layout_arrays(program.arrays, 64, 512)
        facts = {
            f.access.array: f for f in analyze_program(program, layout, machine(), 4)
        }
        assert facts["big"].likely_misses
        assert not facts["small"].likely_misses

    def test_tlb_hostile_for_page_strides(self):
        decls = (ArrayDecl("x", 64 * 1024),)
        loop = Loop("l", LoopKind.PARALLEL, (StridedAccess("x", block_bytes=256),))
        program = Program("p", decls, (Phase("ph", (loop,)),))
        layout = layout_arrays(decls, 64, 512)
        facts = analyze_program(program, layout, machine(), 4)
        assert facts[0].tlb_hostile  # stride 1KB >= 256B page


class TestPrefetchPass:
    def test_only_missing_accesses_get_prefetches(self):
        program = streaming_program()
        layout = layout_arrays(program.arrays, 64, 512)
        plan = insert_prefetches(program, layout, machine(), 4)
        arrays = {d.access.array for d in plan.decisions}
        assert arrays == {"big"}

    def test_prefetch_distance_positive_and_bounded(self):
        program = streaming_program()
        layout = layout_arrays(program.arrays, 64, 512)
        plan = insert_prefetches(program, layout, machine(), 4)
        for decision in plan.decisions:
            assert 1 <= decision.distance_lines <= 8

    def test_tiled_loops_not_pipelined(self):
        # Section 6.2: applu's tiling inhibits software pipelining.
        program = streaming_program(tiled=True)
        layout = layout_arrays(program.arrays, 64, 512)
        plan = insert_prefetches(program, layout, machine(), 4)
        assert plan.decisions
        assert all(not d.pipelined for d in plan.decisions)

    def test_decision_lookup(self):
        program = streaming_program()
        layout = layout_arrays(program.arrays, 64, 512)
        plan = insert_prefetches(program, layout, machine(), 4)
        loop = program.phases[0].loops[0]
        big = loop.accesses[0]
        small = loop.accesses[1]
        assert plan.decision_for("stream", big) is not None
        assert plan.decision_for("stream", small) is None
        assert plan.num_prefetched_accesses == 1
