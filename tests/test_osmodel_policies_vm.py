"""Tests for mapping policies, the page table and the VM manager."""

import pytest

from repro.machine.config import CacheConfig, MachineConfig
from repro.osmodel.page_table import PageTable
from repro.osmodel.physmem import PhysicalMemory
from repro.osmodel.policies import (
    BinHoppingPolicy,
    CdpcHintPolicy,
    PageColoringPolicy,
    RandomPolicy,
    make_policy,
)
from repro.osmodel.vm import VirtualMemory


class TestPageTable:
    def test_map_translate(self):
        pt = PageTable(page_size=256)
        pt.map(3, 10)
        assert pt.translate(3 * 256 + 17) == 10 * 256 + 17

    def test_double_map_rejected(self):
        pt = PageTable(256)
        pt.map(1, 1)
        with pytest.raises(ValueError):
            pt.map(1, 2)

    def test_translate_unmapped_raises(self):
        pt = PageTable(256)
        with pytest.raises(KeyError):
            pt.translate(0)

    def test_unmap(self):
        pt = PageTable(256)
        pt.map(1, 5)
        assert pt.unmap(1) == 5
        assert not pt.is_mapped(1)
        with pytest.raises(KeyError):
            pt.unmap(1)

    def test_len_and_mappings(self):
        pt = PageTable(256)
        pt.map(1, 5)
        pt.map(2, 6)
        assert len(pt) == 2
        assert dict(pt.mappings()) == {1: 5, 2: 6}


class TestPolicies:
    def test_page_coloring_is_vpage_mod_colors(self):
        policy = PageColoringPolicy(16)
        assert policy.preferred_color(0) == 0
        assert policy.preferred_color(16) == 0
        assert policy.preferred_color(17) == 1

    def test_bin_hopping_cycles_in_fault_order(self):
        policy = BinHoppingPolicy(4)
        colors = [policy.preferred_color(vpage=99 - i) for i in range(6)]
        assert colors == [0, 1, 2, 3, 0, 1]  # independent of vpage

    def test_bin_hopping_race_perturbs_concurrent_faults(self):
        deterministic = BinHoppingPolicy(64)
        racy = BinHoppingPolicy(64, race_seed=42)
        base = [deterministic.preferred_color(i, concurrent_faults=8) for i in range(32)]
        perturbed = [racy.preferred_color(i, concurrent_faults=8) for i in range(32)]
        assert base != perturbed

    def test_bin_hopping_race_inactive_for_single_fault(self):
        racy = BinHoppingPolicy(64, race_seed=42)
        assert [racy.preferred_color(i, concurrent_faults=1) for i in range(4)] == [
            0, 1, 2, 3,
        ]

    def test_bin_hopping_reset(self):
        policy = BinHoppingPolicy(4)
        policy.preferred_color(0)
        policy.reset()
        assert policy.preferred_color(0) == 0

    def test_cdpc_hint_and_fallback(self):
        policy = CdpcHintPolicy(16, fallback=PageColoringPolicy(16))
        policy.install_hints({5: 9})
        assert policy.preferred_color(5) == 9
        assert policy.preferred_color(6) == 6  # fallback: vpage mod colors
        assert policy.num_hints == 1
        assert policy.hint_for(5) == 9
        assert policy.hint_for(6) is None

    def test_cdpc_hints_wrap_modulo_colors(self):
        policy = CdpcHintPolicy(16, fallback=PageColoringPolicy(16))
        policy.install_hints({1: 17})
        assert policy.preferred_color(1) == 1

    def test_cdpc_rejects_mismatched_fallback(self):
        with pytest.raises(ValueError):
            CdpcHintPolicy(16, fallback=PageColoringPolicy(8))

    def test_cdpc_clear_hints(self):
        policy = CdpcHintPolicy(16, fallback=PageColoringPolicy(16))
        policy.install_hints({5: 9})
        policy.clear_hints()
        assert policy.preferred_color(5) == 5

    def test_random_policy_deterministic_per_seed(self):
        a = RandomPolicy(64, seed=3)
        b = RandomPolicy(64, seed=3)
        first = [a.preferred_color(i) for i in range(10)]
        assert first == [b.preferred_color(i) for i in range(10)]
        a.reset()
        assert [a.preferred_color(i) for i in range(10)] == first

    def test_factory(self):
        assert make_policy("page_coloring", 16).name == "page_coloring"
        assert make_policy("bin_hopping", 16).name == "bin_hopping"
        cdpc = make_policy("cdpc", 16)
        assert isinstance(cdpc, CdpcHintPolicy)
        assert isinstance(cdpc.fallback, PageColoringPolicy)
        cdpc_bh = make_policy("cdpc_bin_hopping", 16)
        assert isinstance(cdpc_bh.fallback, BinHoppingPolicy)
        with pytest.raises(ValueError):
            make_policy("fifo", 16)


def vm_config() -> MachineConfig:
    return MachineConfig(
        num_cpus=2,
        page_size=256,
        l1d=CacheConfig(512, 64, 2),
        l1i=CacheConfig(512, 64, 2),
        l2=CacheConfig(4096, 64, 1),  # 16 colors
    )


class TestVirtualMemory:
    def test_fault_maps_preferred_color(self):
        config = vm_config()
        vm = VirtualMemory(config, PageColoringPolicy(config.num_colors))
        vm.fault(vpage=5)
        assert vm.color_of_vpage(5) == 5
        assert vm.faults == 1

    def test_double_fault_rejected(self):
        config = vm_config()
        vm = VirtualMemory(config, PageColoringPolicy(config.num_colors))
        vm.fault(0)
        with pytest.raises(ValueError):
            vm.fault(0)

    def test_ensure_mapped_idempotent(self):
        config = vm_config()
        vm = VirtualMemory(config, PageColoringPolicy(config.num_colors))
        assert vm.ensure_mapped(0)
        assert not vm.ensure_mapped(0)
        assert vm.faults == 1

    def test_policy_color_mismatch_rejected(self):
        config = vm_config()
        with pytest.raises(ValueError):
            VirtualMemory(config, PageColoringPolicy(7))

    def test_translate_roundtrip(self):
        config = vm_config()
        vm = VirtualMemory(config, PageColoringPolicy(config.num_colors))
        vm.fault(3)
        paddr = vm.translate(3 * 256 + 40)
        assert paddr % 256 == 40

    def test_madvise_requires_cdpc_policy(self):
        config = vm_config()
        vm = VirtualMemory(config, PageColoringPolicy(config.num_colors))
        with pytest.raises(TypeError):
            vm.madvise_colors({0: 3})

    def test_madvise_installs_hints(self):
        config = vm_config()
        policy = CdpcHintPolicy(
            config.num_colors, fallback=PageColoringPolicy(config.num_colors)
        )
        vm = VirtualMemory(config, policy)
        assert vm.madvise_colors({7: 1}) == 1
        vm.fault(7)
        assert vm.color_of_vpage(7) == 1

    def test_touch_pages_realizes_cdpc_on_bin_hopping(self):
        # The Digital UNIX trick (Section 5.3): with bin hopping, touching
        # pages in coloring order produces the desired round-robin colors.
        config = vm_config()
        vm = VirtualMemory(config, BinHoppingPolicy(config.num_colors))
        order = [9, 4, 11, 2]
        assert vm.touch_pages(order) == 4
        for index, vpage in enumerate(order):
            assert vm.color_of_vpage(vpage) == index

    def test_touch_pages_skips_mapped(self):
        config = vm_config()
        vm = VirtualMemory(config, BinHoppingPolicy(config.num_colors))
        vm.fault(1)
        assert vm.touch_pages([1, 2]) == 1

    def test_color_histogram(self):
        config = vm_config()
        vm = VirtualMemory(config, PageColoringPolicy(config.num_colors))
        for vpage in range(4):
            vm.fault(vpage)
        histogram = vm.color_histogram()
        assert histogram[:4] == [1, 1, 1, 1]
        assert sum(histogram) == 4

    def test_partially_installed_hints(self):
        # A lossy madvise (some hint pages dropped in transit) must leave a
        # coherent policy: hinted pages land on their colors, dropped pages
        # silently use the fallback, and later re-delivery fills the gaps.
        config = vm_config()
        policy = CdpcHintPolicy(
            config.num_colors, fallback=PageColoringPolicy(config.num_colors)
        )
        vm = VirtualMemory(config, policy)
        full = {vpage: (vpage * 5) % config.num_colors for vpage in range(8)}
        delivered = {v: c for v, c in full.items() if v % 2 == 0}
        assert vm.madvise_colors(delivered) == 4
        for vpage in range(8):
            vm.fault(vpage)
            if vpage in delivered:
                assert vm.color_of_vpage(vpage) == delivered[vpage]
            else:
                # Fallback page coloring: vpage mod colors.
                assert vm.color_of_vpage(vpage) == vpage % config.num_colors
        # Re-delivering the dropped half only affects pages not yet faulted.
        rest = {v: c for v, c in full.items() if v % 2 == 1}
        vm.madvise_colors(rest)
        vm.fault(9)
        assert policy.hint_for(9) is None
        assert policy.num_hints == 8

    def test_memory_pressure_defeats_hints(self):
        config = vm_config()
        policy = CdpcHintPolicy(
            config.num_colors, fallback=PageColoringPolicy(config.num_colors)
        )
        physmem = PhysicalMemory(config.num_colors, config.num_colors)
        vm = VirtualMemory(config, policy, physmem=physmem)
        vm.madvise_colors({0: 3, 1: 3})
        vm.fault(0)
        vm.fault(1)  # color 3 exhausted; falls back to a neighbour
        assert vm.color_of_vpage(0) == 3
        assert vm.color_of_vpage(1) != 3
        assert physmem.hint_honor_rate == pytest.approx(0.5)
