"""Tests for the affine loop-nest analysis."""

import pytest

from repro.common import Communication
from repro.compiler.affine import (
    AffineNest,
    AffinePhase,
    AffineProgram,
    AffineRef,
    AnalysisError,
    Array2D,
    C,
    I,
    J,
    Subscript,
    classify_ref,
    lower,
)
from repro.compiler.ir import (
    BoundaryAccess,
    LoopKind,
    PartitionedAccess,
    StridedAccess,
    WholeArrayAccess,
)


def grid(name="A", rows=64, cols=64) -> Array2D:
    return Array2D(name, rows, cols)


def nest(refs, i_extent=64, j_extent=64, **kwargs) -> AffineNest:
    return AffineNest("n", i_extent, j_extent, tuple(refs), **kwargs)


class TestClassify:
    def test_column_sweep_is_partitioned(self):
        # A(j, i): the distributed index selects the column.
        ref = AffineRef("A", row=J(), col=I())
        access = classify_ref(ref, grid(), nest([ref]))
        assert isinstance(access, PartitionedAccess)
        assert access.units == 64
        assert not access.is_write

    def test_write_flag_propagates(self):
        ref = AffineRef("A", row=J(), col=I(), is_write=True)
        access = classify_ref(ref, grid(), nest([ref]))
        assert access.is_write

    def test_neighbour_column_is_boundary_shift(self):
        # A(j, i-1): reads the neighbouring processor's last column.
        ref = AffineRef("A", row=J(), col=I(-1))
        access = classify_ref(ref, grid(), nest([ref]))
        assert isinstance(access, BoundaryAccess)
        assert access.comm is Communication.SHIFT
        assert access.boundary_fraction == 1.0

    def test_row_access_is_strided(self):
        # A(i, j): a row of a column-major array — the su2cor shape.
        ref = AffineRef("A", row=I(), col=J())
        access = classify_ref(ref, grid(rows=64), nest([ref], i_extent=8))
        assert isinstance(access, StridedAccess)
        assert access.block_bytes == 64 // 8 * 8

    def test_loop_invariant_vector_is_whole_array(self):
        # k(j): every processor reads the whole vector.
        ref = AffineRef("k", row=J(), col=C(0))
        access = classify_ref(ref, grid("k", rows=64, cols=1), nest([ref]))
        assert isinstance(access, WholeArrayAccess)
        assert access.fraction == 1.0

    def test_scalar_like_constant_ref(self):
        ref = AffineRef("s", row=C(0), col=C(0))
        access = classify_ref(ref, grid("s", rows=4, cols=1), nest([ref]))
        assert isinstance(access, WholeArrayAccess)
        assert access.fraction < 0.5

    def test_rejects_both_indices_distributed(self):
        ref = AffineRef("A", row=I(), col=Subscript(i_coef=1, j_coef=1))
        with pytest.raises(AnalysisError):
            classify_ref(ref, grid(), nest([ref]))

    def test_rejects_non_unit_column_stride(self):
        ref = AffineRef("A", row=J(), col=Subscript(i_coef=2))
        with pytest.raises(AnalysisError):
            classify_ref(ref, grid(), nest([ref]))


class TestLower:
    def stencil_program(self) -> AffineProgram:
        """A tomcatv-like nest: x(j,i), y(j,i±1) stencil writing rx."""
        arrays = [grid("x"), grid("y"), grid("rx")]
        refs = (
            AffineRef("x", row=J(), col=I()),
            AffineRef("y", row=J(), col=I()),
            AffineRef("y", row=J(), col=I(-1)),
            AffineRef("y", row=J(), col=I(+1)),
            AffineRef("rx", row=J(), col=I(), is_write=True),
        )
        stencil = AffineNest("stencil", 64, 64, refs,
                             instructions_per_point=20.0)
        return AffineProgram(
            "mini", arrays, [AffinePhase("steady", (stencil,), occurrences=5)]
        )

    def test_lowered_program_structure(self):
        program = lower(self.stencil_program())
        assert program.name == "mini"
        assert [a.name for a in program.arrays] == ["x", "y", "rx"]
        assert program.arrays[0].size_bytes == 64 * 64 * 8
        loop = program.phases[0].loops[0]
        assert loop.kind is LoopKind.PARALLEL
        assert loop.iterations == 64

    def test_lowered_accesses_match_hand_declared_shape(self):
        program = lower(self.stencil_program())
        accesses = program.phases[0].loops[0].accesses
        kinds = [type(a).__name__ for a in accesses]
        assert kinds.count("PartitionedAccess") == 3  # x, y, rx
        # y at i-1 and i+1 derive the *same* shift pattern, which the
        # lowering deduplicates (SHIFT traces already read both edges).
        assert kinds.count("BoundaryAccess") == 1

    def test_duplicate_derivations_deduplicated(self):
        arrays = [grid("x")]
        refs = (
            AffineRef("x", row=J(), col=I()),
            AffineRef("x", row=J(-1), col=I()),  # same derived pattern
        )
        program = lower(
            AffineProgram("p", arrays,
                          [AffinePhase("s", (nest(refs, 64, 64),))])
        )
        assert len(program.phases[0].loops[0].accesses) == 1

    def test_instruction_density_split_over_refs(self):
        program = lower(self.stencil_program())
        loop = program.phases[0].loops[0]
        assert loop.instructions_per_word == pytest.approx(20.0 / 5)

    def test_lowered_program_runs_end_to_end(self):
        from repro.machine.config import CacheConfig, MachineConfig
        from repro.sim.engine import EngineOptions, run_program

        config = MachineConfig(
            num_cpus=4,
            page_size=256,
            l1d=CacheConfig(1024, 64, 2),
            l1i=CacheConfig(1024, 64, 2),
            l2=CacheConfig(8192, 64, 1),
        )
        program = lower(self.stencil_program())
        base = run_program(program, config, EngineOptions())
        cdpc = run_program(program, config, EngineOptions(cdpc=True))
        assert base.wall_ns > 0
        assert cdpc.replacement_misses() <= base.replacement_misses()

    def test_derived_summary_matches_hand_written(self):
        """The analysis output feeds the same summary extraction as the
        hand-declared workloads, and derives the same partitionings."""
        from repro.compiler.padding import layout_arrays
        from repro.compiler.summaries import extract_summary

        program = lower(self.stencil_program())
        layout = layout_arrays(program.arrays, 64, 1024)
        summary = extract_summary(program, layout)
        assert {p.array for p in summary.partitionings} == {"x", "y", "rx"}
        assert len(summary.communications) >= 1
        assert summary.are_grouped("x", "rx")

    def test_validation(self):
        with pytest.raises(ValueError):
            AffineNest("n", 0, 4, (AffineRef("A", J(), I()),))
        with pytest.raises(ValueError):
            AffineNest("n", 4, 4, ())
