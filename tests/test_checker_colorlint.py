"""Color-plan rules, the diagnostics/registry machinery, and the engine gate."""

from __future__ import annotations

import json
import warnings

import pytest

from repro.checker import (
    DEFAULT_REGISTRY,
    Diagnostic,
    LintError,
    LintReport,
    RuleRegistry,
    Severity,
    lint_context,
    lint_context_report,
    lint_program,
)
from repro.compiler.ir import (
    ArrayDecl,
    BoundaryAccess,
    Loop,
    LoopKind,
    PartitionedAccess,
    Phase,
    Program,
    StridedAccess,
)
from repro.core.coloring import ColoringResult
from repro.core.segments import UniformAccessSegment
from repro.sim.engine import EngineOptions, run_program
from repro.sim.tracegen import SimProfile


def program_of(loops, arrays, name="prog"):
    return Program(name, tuple(arrays), (Phase("p", tuple(loops)),))


def partitioned_loop(arrays, units, kind=LoopKind.PARALLEL):
    accesses = tuple(
        PartitionedAccess(a.name, units=units, is_write=(i == 0))
        for i, a in enumerate(arrays)
    )
    return Loop("l", kind, accesses)


class TestColorBinOverflow:
    def test_capacity_overflow_fires_C001(self, tiny_config):
        # 40 pages per processor against 16 colors x 1-way: unavoidable.
        arrays = (ArrayDecl("x", 80 * tiny_config.page_size),)
        program = program_of([partitioned_loop(arrays, 80)], arrays)
        report = lint_program(program, tiny_config)
        hits = report.by_rule("C001")
        assert hits and hits[0].severity is Severity.WARNING
        assert "unavoidable at this cache size" in hits[0].message
        assert not hits[0].evidence["avoidable_cpus"]

    def test_fitting_footprint_is_quiet(self, tiny_config):
        arrays = (ArrayDecl("x", 8 * tiny_config.page_size),)
        program = program_of([partitioned_loop(arrays, 8)], arrays)
        assert not lint_program(program, tiny_config).by_rule("C001")

    def test_stacked_plan_reports_avoidable_overflow(self, tiny_config):
        # A hand-made coloring that stacks a fitting footprint on one bin.
        arrays = (ArrayDecl("x", 8 * tiny_config.page_size),)
        program = program_of([partitioned_loop(arrays, 8)], arrays)
        ctx = lint_context(program, tiny_config)
        ctx.coloring = ColoringResult(
            segments=[UniformAccessSegment("x", 0, 4, frozenset([0]))],
            colors={page: 0 for page in range(4)},
            num_colors=tiny_config.num_colors,
        )
        hits = lint_context_report(ctx).by_rule("C001")
        assert hits
        assert hits[0].evidence["avoidable_cpus"] == [0]
        assert "different page order could avoid" in hits[0].message

    def test_without_coloring_rule_is_skipped(self, tiny_config):
        arrays = (ArrayDecl("x", 80 * tiny_config.page_size),)
        program = program_of([partitioned_loop(arrays, 80)], arrays)
        report = lint_program(program, tiny_config, cdpc=False)
        assert not report.by_rule("C001")


class TestGroupedCollision:
    def test_grouped_pair_stacked_on_one_bin_fires_C002(self, tiny_config):
        arrays = (
            ArrayDecl("a", 4 * tiny_config.page_size),
            ArrayDecl("b", 4 * tiny_config.page_size),
        )
        program = program_of([partitioned_loop(arrays, 4)], arrays)
        ctx = lint_context(program, tiny_config)
        ctx.coloring = ColoringResult(
            segments=[
                UniformAccessSegment("a", 0, 1, frozenset([0])),
                UniformAccessSegment("b", 4, 5, frozenset([0])),
            ],
            colors={0: 5, 4: 5},
            num_colors=tiny_config.num_colors,
        )
        hits = lint_context_report(ctx).by_rule("C002")
        assert hits
        assert hits[0].evidence["pair"] == ["a", "b"]

    def test_cdpc_plan_for_grouped_arrays_is_quiet(self, tiny_config):
        # The real coloring keeps the group apart: no collision finding.
        arrays = (
            ArrayDecl("a", 4 * tiny_config.page_size),
            ArrayDecl("b", 4 * tiny_config.page_size),
        )
        program = program_of([partitioned_loop(arrays, 4)], arrays)
        assert not lint_program(program, tiny_config).by_rule("C002")


class TestUnsummarizableStrided:
    def test_parallel_strided_is_warning(self, tiny_config):
        arrays = (ArrayDecl("x", 8 * tiny_config.page_size),)
        loop = Loop("l", LoopKind.PARALLEL,
                    (StridedAccess("x", block_bytes=256),))
        report = lint_program(program_of([loop], arrays), tiny_config)
        hits = report.by_rule("C003")
        assert hits and hits[0].severity is Severity.WARNING
        assert hits[0].array == "x"
        assert hits[0].evidence["pages"] == 8

    def test_suppressed_only_strided_is_info(self, tiny_config):
        arrays = (ArrayDecl("x", 8 * tiny_config.page_size),)
        loop = Loop("l", LoopKind.SUPPRESSED,
                    (StridedAccess("x", block_bytes=256),))
        report = lint_program(program_of([loop], arrays), tiny_config)
        hits = report.by_rule("C003")
        assert hits and hits[0].severity is Severity.INFO
        assert report.clean


class TestPaddingMissed:
    def test_unaligned_bases_fire_C004(self, tiny_config):
        arrays = (ArrayDecl("a", 1000), ArrayDecl("b", 1000))
        program = program_of([partitioned_loop(arrays, 4)], arrays)
        report = lint_program(program, tiny_config, aligned=False)
        hits = report.by_rule("C004")
        assert any("cache-line boundary" in d.message for d in hits)

    def test_grouped_same_line_index_fires_C004(self, tiny_config):
        # Unaligned back-to-back layout: b starts exactly one L1-size
        # multiple after a, landing on the same L1 line index.
        size = 2 * tiny_config.l1d.size
        arrays = (ArrayDecl("a", size), ArrayDecl("b", size))
        program = program_of([partitioned_loop(arrays, 8)], arrays)
        report = lint_program(program, tiny_config, aligned=False)
        hits = report.by_rule("C004")
        assert any(d.evidence.get("pair") == ["a", "b"] for d in hits)

    def test_aligned_layout_pass_is_quiet(self, tiny_config):
        size = 2 * tiny_config.l1d.size
        arrays = (ArrayDecl("a", size), ArrayDecl("b", size))
        program = program_of([partitioned_loop(arrays, 8)], arrays)
        assert not lint_program(program, tiny_config).by_rule("C004")


class TestDiagnosticsMachinery:
    def test_span_formatting(self):
        d = Diagnostic("X001", Severity.ERROR, "msg", loop="l", phase="p", array="a")
        assert d.span == "p/l[a]"
        assert Diagnostic("X001", Severity.INFO, "m").span == "<program>"

    def test_report_sorts_most_severe_first(self):
        report = LintReport(program="p")
        report.extend([
            Diagnostic("B001", Severity.INFO, "note"),
            Diagnostic("A002", Severity.ERROR, "boom"),
            Diagnostic("A001", Severity.WARNING, "hmm"),
        ])
        report.sort()
        assert [d.severity for d in report] == [
            Severity.ERROR, Severity.WARNING, Severity.INFO,
        ]

    def test_clean_tracks_warning_threshold(self):
        report = LintReport(program="p")
        assert report.clean
        report.extend([Diagnostic("A001", Severity.INFO, "note")])
        assert report.clean
        report.extend([Diagnostic("A001", Severity.WARNING, "hmm")])
        assert not report.clean

    def test_raise_if_errors(self):
        report = LintReport(program="p")
        report.raise_if_errors()  # no errors: no raise
        report.extend([Diagnostic("A001", Severity.ERROR, "boom")])
        with pytest.raises(LintError, match="1 error"):
            report.raise_if_errors()

    def test_json_round_trip(self):
        report = LintReport(program="p")
        report.extend([
            Diagnostic("A001", Severity.ERROR, "boom", loop="l",
                       evidence={"witness": [0, 1, 2, 3]}),
        ])
        payload = json.loads(report.to_json())
        assert payload["program"] == "p"
        assert payload["num_errors"] == 1
        assert payload["diagnostics"][0]["severity"] == "ERROR"
        assert payload["diagnostics"][0]["evidence"]["witness"] == [0, 1, 2, 3]

    def test_render_text_mentions_counts(self):
        report = LintReport(program="p")
        assert "clean" in report.render_text()
        report.extend([Diagnostic("A001", Severity.WARNING, "hmm",
                                  fix_hint="pad it")])
        text = report.render_text()
        assert "1 warning(s)" in text and "hint: pad it" in text


class TestRegistry:
    def test_default_registry_has_all_documented_rules(self):
        # The affine rules (A001-A004) live outside the registry.
        assert DEFAULT_REGISTRY.ids() == [
            "C001", "C002", "C003", "C004",
            "R001", "R002", "R004", "R005", "R006",
            "S001", "S002", "S003",
        ]
        for rule_id in DEFAULT_REGISTRY.ids():
            rule = DEFAULT_REGISTRY.get(rule_id)
            assert rule.paper_section
            assert rule.family in ("race", "color", "static")
            # Static rules must not run in the engine's default lint gate.
            if rule.family == "static":
                assert rule.needs_static

    def test_duplicate_registration_rejected(self):
        registry = RuleRegistry()

        @registry.register("T001", "t", family="race", paper_section="0")
        def rule(ctx):
            return []

        with pytest.raises(ValueError, match="duplicate"):
            registry.register("T001", "t", family="race", paper_section="0")(rule)

    def test_unknown_family_rejected(self):
        registry = RuleRegistry()
        with pytest.raises(ValueError, match="family"):
            registry.register("T001", "t", family="nope", paper_section="0")

    def test_only_and_skip_selection(self, tiny_config):
        arrays = (ArrayDecl("x", 8 * tiny_config.page_size),)
        loop = Loop("l", LoopKind.PARALLEL, (
            StridedAccess("x", block_bytes=256, is_write=True),
            PartitionedAccess("x", units=8),
        ))
        program = program_of([loop], arrays)
        everything = lint_program(program, tiny_config)
        assert everything.by_rule("R002") and everything.by_rule("C003")
        only = lint_program(program, tiny_config, only=["C003"])
        assert {d.rule_id for d in only} == {"C003"}
        skipped = lint_program(program, tiny_config, skip=["R002", "R004"])
        assert not skipped.by_rule("R002")

    def test_unknown_rule_id_raises(self, tiny_config):
        arrays = (ArrayDecl("x", 8 * tiny_config.page_size),)
        program = program_of([partitioned_loop(arrays, 8)], arrays)
        with pytest.raises(KeyError, match="Z999"):
            lint_program(program, tiny_config, only=["Z999"])


def racy_program(config):
    arrays = (ArrayDecl("x", 16 * config.page_size),)
    loop = Loop("l", LoopKind.PARALLEL,
                (BoundaryAccess("x", units=16, is_write=True),))
    return program_of([loop], arrays, name="racy")


class TestEngineGate:
    def test_strict_run_refuses_racy_program(self, tiny_config):
        options = EngineOptions(profile=SimProfile.fast(), strict=True)
        with pytest.raises(LintError, match="R001"):
            run_program(racy_program(tiny_config), tiny_config, options)

    def test_default_run_warns_and_proceeds(self, tiny_config):
        options = EngineOptions(profile=SimProfile.fast())
        with pytest.warns(UserWarning, match="static analysis found"):
            result = run_program(racy_program(tiny_config), tiny_config, options)
        assert result.stats is not None

    def test_lint_disabled_is_silent(self, tiny_config):
        options = EngineOptions(profile=SimProfile.fast(), lint=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run_program(racy_program(tiny_config), tiny_config, options)

    def test_clean_program_runs_quietly_in_strict_mode(self, tiny_config):
        arrays = (ArrayDecl("x", 16 * tiny_config.page_size),)
        program = program_of([partitioned_loop(arrays, 16)], arrays)
        options = EngineOptions(profile=SimProfile.fast(), strict=True)
        result = run_program(program, tiny_config, options)
        assert result.stats is not None
