"""Tests for static loop scheduling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import Direction, Partitioning, iteration_ranges
from repro.compiler.ir import Loop, LoopKind, PartitionedAccess
from repro.compiler.parallelize import schedule_loop


class TestIterationRanges:
    def test_even_divides_exactly(self):
        assert iteration_ranges(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_even_spreads_remainder_to_leading_cpus(self):
        ranges = iteration_ranges(10, 4)
        counts = [hi - lo for lo, hi in ranges]
        assert counts == [3, 3, 2, 2]

    def test_blocked_ceil_per_cpu(self):
        ranges = iteration_ranges(10, 4, Partitioning.BLOCKED)
        counts = [hi - lo for lo, hi in ranges]
        assert counts == [3, 3, 3, 1]

    def test_applu_case_idles_trailing_cpus(self):
        # Section 4.1: applu's 33-iteration loops on 16 processors.
        ranges = iteration_ranges(33, 16, Partitioning.BLOCKED)
        counts = [hi - lo for lo, hi in ranges]
        assert counts[:11] == [3] * 11
        assert counts[11:] == [0] * 5

    def test_reverse_direction(self):
        forward = iteration_ranges(10, 4)
        reverse = iteration_ranges(10, 4, direction=Direction.REVERSE)
        assert reverse == list(reversed(forward))

    def test_zero_iterations(self):
        assert iteration_ranges(0, 4) == [(0, 0)] * 4

    def test_validation(self):
        with pytest.raises(ValueError):
            iteration_ranges(-1, 4)
        with pytest.raises(ValueError):
            iteration_ranges(4, 0)

    @given(st.integers(0, 1000), st.integers(1, 64),
           st.sampled_from(list(Partitioning)))
    @settings(max_examples=100, deadline=None)
    def test_ranges_partition_iteration_space(self, n, p, partitioning):
        ranges = iteration_ranges(n, p, partitioning)
        assert len(ranges) == p
        covered = []
        for lo, hi in ranges:
            assert 0 <= lo <= hi <= n
            covered.extend(range(lo, hi))
        assert covered == list(range(n))


class TestLoopSchedule:
    def make_loop(self, units=16, kind=LoopKind.PARALLEL,
                  partitioning=Partitioning.EVEN):
        return Loop(
            "l",
            kind,
            (PartitionedAccess("a", units=units, partitioning=partitioning),),
        )

    def test_parallel_schedule_splits_iterations(self):
        sched = schedule_loop(self.make_loop(16), 4)
        assert sched.iterations_of(0) == 4
        assert sched.participating_cpus == [0, 1, 2, 3]

    def test_sequential_loop_runs_on_master(self):
        sched = schedule_loop(self.make_loop(16, kind=LoopKind.SEQUENTIAL), 4)
        assert sched.iterations_of(0) == 16
        assert sched.iterations_of(1) == 0
        assert sched.participating_cpus == [0]

    def test_suppressed_loop_runs_on_master(self):
        sched = schedule_loop(self.make_loop(16, kind=LoopKind.SUPPRESSED), 4)
        assert sched.participating_cpus == [0]

    def test_imbalance_zero_when_even(self):
        sched = schedule_loop(self.make_loop(16), 4)
        assert sched.imbalance_fraction() == 0.0

    def test_imbalance_for_applu(self):
        sched = schedule_loop(
            self.make_loop(33, partitioning=Partitioning.BLOCKED), 16
        )
        # 11 CPUs x 3 iterations, 5 idle: capacity 48, work 33.
        assert sched.imbalance_fraction() == pytest.approx(1 - 33 / 48)

    def test_imbalance_zero_for_empty_loop(self):
        sched = schedule_loop(self.make_loop(16), 4)
        empty = type(sched)(loop=sched.loop, num_cpus=4,
                            ranges=((0, 0),) * 4)
        assert empty.imbalance_fraction() == 0.0

    def test_participating_cpus_excludes_idle(self):
        sched = schedule_loop(
            self.make_loop(33, partitioning=Partitioning.BLOCKED), 16
        )
        assert sched.participating_cpus == list(range(11))
