"""Tests for machine configuration geometry and scaling."""

import pytest

from repro.machine.config import (
    CacheConfig,
    MachineConfig,
    TlbConfig,
    alpha_server,
    sgi_2way,
    sgi_4mb,
    sgi_base,
)


class TestCacheConfig:
    def test_num_sets_direct_mapped(self):
        cache = CacheConfig(1024 * 1024, 128, 1)
        assert cache.num_lines == 8192
        assert cache.num_sets == 8192

    def test_num_sets_two_way(self):
        cache = CacheConfig(1024 * 1024, 128, 2)
        assert cache.num_sets == 4096

    def test_line_address_masks_offset(self):
        cache = CacheConfig(4096, 64, 1)
        assert cache.line_address(130) == 128
        assert cache.line_address(64) == 64
        assert cache.line_address(63) == 0

    def test_set_index_wraps_at_cache_size(self):
        cache = CacheConfig(4096, 64, 1)
        assert cache.set_index(0) == cache.set_index(4096)
        assert cache.set_index(64) == 1

    def test_word_offset(self):
        cache = CacheConfig(4096, 64, 1)
        assert cache.word_offset(0) == 0
        assert cache.word_offset(8) == 1
        assert cache.word_offset(64 + 16) == 2

    def test_rejects_non_power_of_two_size(self):
        with pytest.raises(ValueError):
            CacheConfig(1000, 64, 1)

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError):
            CacheConfig(1024, 96, 1)

    def test_rejects_zero_associativity(self):
        with pytest.raises(ValueError):
            CacheConfig(1024, 64, 0)

    def test_scaled_preserves_line_size(self):
        cache = CacheConfig(1024 * 1024, 128, 2).scaled(16)
        assert cache.size == 64 * 1024
        assert cache.line_size == 128
        assert cache.associativity == 2

    def test_scaled_rejects_sub_set_result(self):
        with pytest.raises(ValueError):
            CacheConfig(1024, 128, 4).scaled(16)


class TestMachineConfig:
    def test_base_colors_match_paper(self):
        # Section 2.1: 1MB cache, 4KB pages -> 256 colors direct-mapped.
        assert sgi_base().num_colors == 256

    def test_two_way_halves_colors(self):
        # ... and 128 if the cache is two-way set-associative.
        assert sgi_2way().num_colors == 128

    def test_4mb_colors(self):
        assert sgi_4mb().num_colors == 1024

    def test_scaling_preserves_color_count(self):
        for factor in (2, 4, 8, 16):
            assert sgi_base().scaled(factor).num_colors == 256
            assert sgi_2way().scaled(factor).num_colors == 128

    def test_scaling_compounds(self):
        config = sgi_base().scaled(4).scaled(4)
        assert config.scale_factor == 16
        assert config.page_size == 256

    def test_scale_factor_one_is_identity(self):
        config = sgi_base()
        assert config.scaled(1) is config

    def test_cycle_time(self):
        assert sgi_base().cycle_ns == pytest.approx(2.5)
        assert alpha_server().cycle_ns == pytest.approx(1000 / 350)

    def test_page_number(self):
        config = sgi_base()
        assert config.page_number(4095) == 0
        assert config.page_number(4096) == 1

    def test_page_color_of_frame_cycles(self):
        config = sgi_base()
        assert config.page_color_of_frame(0) == 0
        assert config.page_color_of_frame(256) == 0
        assert config.page_color_of_frame(257) == 1

    def test_with_cpus(self):
        assert sgi_base(1).with_cpus(8).num_cpus == 8

    def test_rejects_zero_cpus(self):
        with pytest.raises(ValueError):
            MachineConfig(num_cpus=0)

    def test_rejects_page_smaller_than_line(self):
        with pytest.raises(ValueError):
            MachineConfig(page_size=64, l2=CacheConfig(1024 * 1024, 128, 1))

    def test_alpha_server_matches_section7(self):
        config = alpha_server(8)
        assert config.num_cpus == 8
        assert config.cpu_clock_mhz == 350.0
        assert config.l2.size == 4 * 1024 * 1024
        assert config.l2.associativity == 1

    def test_tlb_defaults(self):
        assert TlbConfig().entries == 64


class TestHierarchyScaling:
    """Scaling regression for the geometry presets (see test_hierarchy.py
    for the full sweep): per-level scaling must keep the color count."""

    def test_sliced_preset_scales_without_losing_colors(self):
        from repro.machine.config import sliced_llc_8x

        config = sliced_llc_8x(4)
        scaled = config.scaled(16)
        assert scaled.num_colors == config.num_colors == 256
        assert scaled.page_size == config.page_size // 16
        assert scaled.hierarchy is not None
        assert scaled.hierarchy.llc.slices == 8

    def test_three_level_preset_scales_every_level(self):
        from repro.machine.config import three_level

        config = three_level(4)
        scaled = config.scaled(16)
        assert scaled.num_colors == config.num_colors == 1024
        assert scaled.hierarchy is not None and config.hierarchy is not None
        assert scaled.hierarchy.mid is not None
        assert scaled.hierarchy.mid.size == config.hierarchy.mid.size // 16
        assert scaled.hierarchy.llc.shared
