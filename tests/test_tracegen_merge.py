"""Property tests for proportional stream interleaving in trace generation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.tracegen import _merge_streams


def make_stream(start, length, flag):
    return np.arange(start, start + length, dtype=np.int64), flag


class TestMergeStreams:
    def test_empty(self):
        addrs, flags, ids = _merge_streams([])
        assert len(addrs) == len(flags) == len(ids) == 0

    def test_single_stream_passthrough(self):
        addrs, flags, ids = _merge_streams([make_stream(0, 5, 1)])
        assert addrs.tolist() == [0, 1, 2, 3, 4]
        assert set(flags.tolist()) == {1}
        assert set(ids.tolist()) == {0}

    def test_equal_lengths_alternate_strictly(self):
        addrs, flags, ids = _merge_streams(
            [make_stream(0, 4, 0), make_stream(100, 4, 1)]
        )
        assert ids.tolist() == [0, 1, 0, 1, 0, 1, 0, 1]

    def test_empty_streams_skipped_and_ids_renumbered(self):
        addrs, _flags, ids = _merge_streams(
            [
                (np.empty(0, dtype=np.int64), 0),
                make_stream(0, 3, 0),
                (np.empty(0, dtype=np.int64), 0),
                make_stream(100, 3, 1),
            ]
        )
        # Live streams get consecutive ids in order of appearance.
        assert set(ids.tolist()) == {0, 1}

    @given(
        st.lists(st.integers(0, 50), min_size=1, max_size=6),
    )
    @settings(max_examples=80, deadline=None)
    def test_merge_preserves_all_elements_and_order(self, lengths):
        streams = [make_stream(1000 * i, n, i % 4) for i, n in enumerate(lengths)]
        addrs, flags, ids = _merge_streams(streams)
        assert len(addrs) == sum(lengths)
        # Each stream's elements appear in their original relative order.
        live = [i for i, n in enumerate(lengths) if n]
        for live_index, stream_index in enumerate(live):
            mine = addrs[ids == live_index]
            expected = np.arange(
                1000 * stream_index, 1000 * stream_index + lengths[stream_index]
            )
            assert mine.tolist() == expected.tolist()

    @given(st.integers(1, 40), st.integers(1, 40))
    @settings(max_examples=60, deadline=None)
    def test_proportional_interleave(self, len_a, len_b):
        """At any prefix, each stream has progressed proportionally
        (within one element of its fair share)."""
        addrs, _flags, ids = _merge_streams(
            [make_stream(0, len_a, 0), make_stream(10_000, len_b, 1)]
        )
        total = len_a + len_b
        seen_a = 0
        for position, stream in enumerate(ids.tolist(), start=1):
            if stream == 0:
                seen_a += 1
            fair = position * len_a / total
            assert abs(seen_a - fair) <= 1 + max(len_a, len_b) / total
