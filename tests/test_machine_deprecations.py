"""Deprecation shims of the geometry redesign (the PR-5 discipline).

Every pre-hierarchy ``MachineConfig`` spelling keeps working for one
deprecation cycle: the removed ``cache=`` keyword maps onto ``l2=`` with
exactly one :class:`DeprecationWarning`, and everything the repo's own
callers use — presets, ``scaled``, ``with_cpus``, ``replace``, the
session facade — stays warning-free, because CI runs an
``-W error::DeprecationWarning`` leg over them.
"""

from __future__ import annotations

import warnings
from dataclasses import replace

import pytest

from repro.api import Session
from repro.machine.config import (
    MACHINE_PRESETS,
    CacheConfig,
    MachineConfig,
)


class TestCacheKeywordShim:
    def test_cache_keyword_maps_to_l2(self):
        with pytest.warns(DeprecationWarning, match="'cache' is deprecated"):
            config = MachineConfig(cache=CacheConfig(4 * 1024 * 1024, 128, 1))
        assert config.l2 == CacheConfig(4 * 1024 * 1024, 128, 1)
        assert config.num_colors == 1024
        assert config == MachineConfig(l2=CacheConfig(4 * 1024 * 1024, 128, 1))

    def test_cache_keyword_warns_exactly_once(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            MachineConfig(cache=CacheConfig(1024 * 1024, 128, 2))
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1

    def test_cache_with_l2_is_ambiguous(self):
        with pytest.raises(TypeError, match="both 'cache'"):
            MachineConfig(
                cache=CacheConfig(1024 * 1024, 128, 1),
                l2=CacheConfig(1024 * 1024, 128, 2),
            )

    def test_shimmed_config_still_scales(self):
        with pytest.warns(DeprecationWarning):
            config = MachineConfig(cache=CacheConfig(1024 * 1024, 128, 1))
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert config.scaled(16).num_colors == config.num_colors


class TestModernSurfaceIsWarningFree:
    """The spellings the repo's own callers use must never warn."""

    def assert_silent(self, fn):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            return fn()

    @pytest.mark.parametrize("name", sorted(MACHINE_PRESETS))
    def test_presets_scaled_with_cpus(self, name):
        preset = MACHINE_PRESETS[name]
        config = self.assert_silent(lambda: preset(4).scaled(16))
        self.assert_silent(lambda: config.with_cpus(8))
        self.assert_silent(lambda: MachineConfig.from_dict(config.to_dict()))

    def test_plain_constructions(self):
        self.assert_silent(MachineConfig)
        self.assert_silent(lambda: MachineConfig(num_cpus=8))
        self.assert_silent(
            lambda: MachineConfig(l2=CacheConfig(4 * 1024 * 1024, 128, 1))
        )

    def test_dataclass_replace(self):
        config = self.assert_silent(lambda: MACHINE_PRESETS["sgi_base"](2))
        self.assert_silent(
            lambda: replace(config, l2=CacheConfig(1024 * 1024, 128, 2))
        )
        sliced = self.assert_silent(
            lambda: MACHINE_PRESETS["sliced_llc_8x"](2)
        )
        self.assert_silent(lambda: replace(sliced, num_cpus=4))

    def test_session_machine_selection(self):
        session = self.assert_silent(
            lambda: Session("tomcatv", machine="three_level", cpus=4)
        )
        assert session.config.num_colors == 1024
        self.assert_silent(lambda: Session("tomcatv", cpus=4))
