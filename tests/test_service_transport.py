"""Tests for the TCP JSON-lines transport: ops, errors, pipelining."""

import asyncio
import json

from repro.service import (
    ColoringRequest,
    ColoringService,
    RequestKind,
    ServiceClient,
    ServiceListener,
    Status,
)


def synthetic(key, request_id=None, **knobs):
    knobs = {"key": key, **knobs}
    return ColoringRequest(
        kind=RequestKind.SYNTHETIC,
        workload="w",
        request_id=request_id,
        synthetic=tuple(sorted(knobs.items())),
    )


async def _serve():
    """Started service + listener + connected client, as a context."""
    service = ColoringService(engine="synthetic", batch_window_s=0.001)
    await service.start()
    listener = await ServiceListener.start(service)
    client = await ServiceClient.connect(listener.host, listener.port)
    return service, listener, client


async def _teardown(service, listener, client):
    await client.close()
    await listener.close()
    await service.drain()


class TestClientOps:
    def test_submit_roundtrip_and_cached_repeat(self):
        async def main():
            service, listener, client = await _serve()
            try:
                first = await client.submit(synthetic("k", request_id="r1"))
                second = await client.submit(synthetic("k", request_id="r2"))
                return first, second
            finally:
                await _teardown(service, listener, client)

        first, second = asyncio.run(main())
        assert first.status == Status.OK and not first.cached
        assert first.request_id == "r1"
        assert second.status == Status.OK and second.cached
        assert second.request_id == "r2"
        assert second.result == first.result

    def test_control_ops(self):
        async def main():
            service, listener, client = await _serve()
            try:
                pong = await client.ping()
                health = await client.health()
                ready = await client.ready()
                await client.submit(synthetic("k"))
                metrics = await client.metrics()
                return pong, health, ready, metrics
            finally:
                await _teardown(service, listener, client)

        pong, health, ready, metrics = asyncio.run(main())
        assert pong is True
        assert health["op"] == "health" and health["status"] == "ok"
        assert ready["ready"] is True
        assert metrics["schema"] == "repro.obs.metrics/v1"
        assert metrics["counters"]["service.responses.ok"] == 1

    def test_top_level_request_object_is_a_submit(self):
        # A line without "op" is treated as the request itself.
        async def main():
            service, listener, client = await _serve()
            try:
                payload = synthetic("bare", request_id="r9").to_dict()
                return await client._roundtrip(payload)
            finally:
                await _teardown(service, listener, client)

        message = asyncio.run(main())
        assert message["status"] == "ok"
        assert message["request_id"] == "r9"


class TestWireErrors:
    def _raw_roundtrip(self, raw_line: bytes):
        async def main():
            service, listener, client = await _serve()
            try:
                client._writer.write(raw_line)
                await client._writer.drain()
                line = await asyncio.wait_for(client._reader.readline(), 5)
                return json.loads(line.decode("utf-8"))
            finally:
                await _teardown(service, listener, client)

        return asyncio.run(main())

    def test_invalid_json_gets_an_explicit_rejection(self):
        message = self._raw_roundtrip(b"this is not json\n")
        assert message["status"] == "rejected"
        assert message["reason"] == "bad_request"
        assert "invalid JSON" in message["error"]

    def test_non_object_line_gets_an_explicit_rejection(self):
        message = self._raw_roundtrip(b"[1, 2, 3]\n")
        assert message["status"] == "rejected"
        assert "JSON object" in message["error"]

    def test_unknown_op_gets_an_explicit_rejection(self):
        message = self._raw_roundtrip(b'{"op": "frobnicate"}\n')
        assert message["status"] == "rejected"
        assert "unknown op" in message["error"]

    def test_malformed_request_echoes_its_request_id(self):
        payload = {"op": "submit", "request": {"workload": "w", "color": "red", "request_id": "r7"}}
        message = self._raw_roundtrip((json.dumps(payload) + "\n").encode())
        assert message["status"] == "rejected"
        assert message["reason"] == "bad_request"
        assert message["request_id"] == "r7"
        assert "unknown request field" in message["error"]

    def test_blank_lines_are_ignored(self):
        async def main():
            service, listener, client = await _serve()
            try:
                client._writer.write(b"\n\n")
                await client._writer.drain()
                return await client.ping()
            finally:
                await _teardown(service, listener, client)

        assert asyncio.run(main()) is True


class TestPipelining:
    def test_lines_on_one_connection_are_served_concurrently(self):
        # Pipeline a slow submit and a ping; the ping must answer first.
        async def main():
            service, listener, client = await _serve()
            try:
                slow = synthetic("slow", request_id="slow", delay_ms=200.0)
                lines = (
                    json.dumps({"op": "submit", "request": slow.to_dict()})
                    + "\n"
                    + json.dumps({"op": "ping"})
                    + "\n"
                )
                client._writer.write(lines.encode())
                await client._writer.drain()
                first = json.loads(await asyncio.wait_for(client._reader.readline(), 5))
                second = json.loads(await asyncio.wait_for(client._reader.readline(), 5))
                return first, second
            finally:
                await _teardown(service, listener, client)

        first, second = asyncio.run(main())
        assert first == {"op": "pong"}
        assert second["status"] == "ok" and second["request_id"] == "slow"

    def test_listener_close_finishes_inflight_lines(self):
        async def main():
            service, listener, client = await _serve()
            slow = synthetic("slow", request_id="slow", delay_ms=100.0)
            client._writer.write(
                (json.dumps({"op": "submit", "request": slow.to_dict()}) + "\n").encode()
            )
            await client._writer.drain()
            await asyncio.sleep(0.02)  # line is in flight
            await listener.close()
            line = await asyncio.wait_for(client._reader.readline(), 5)
            message = json.loads(line.decode("utf-8"))
            await client.close()
            await service.drain()
            return message

        message = asyncio.run(main())
        assert message["status"] == "ok"
        assert message["request_id"] == "slow"
