"""Hygiene tests on the public API surface."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.compiler",
    "repro.core",
    "repro.machine",
    "repro.osmodel",
    "repro.sim",
    "repro.workloads",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), package
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_is_sorted_set(package):
    module = importlib.import_module(package)
    names = [n for n in module.__all__ if n != "__version__"]
    assert len(names) == len(set(names)), f"{package}: duplicate exports"


def test_top_level_quickstart_names():
    import repro

    for name in ("run_benchmark", "run_program", "sgi_base", "alpha_server",
                 "CdpcRuntime", "EngineOptions", "get_workload"):
        assert name in repro.__all__


def test_every_public_module_has_docstring():
    import pathlib

    src = pathlib.Path(__file__).parent.parent / "src" / "repro"
    for path in sorted(src.rglob("*.py")):
        text = path.read_text()
        stripped = text.lstrip()
        assert stripped.startswith('"""'), f"{path} lacks a module docstring"


def test_measure_occurrence_variation_unit():
    from repro.machine.config import sgi_base
    from repro.sim.engine import EngineOptions, measure_occurrence_variation
    from repro.sim.tracegen import SimProfile
    from repro.workloads import get_workload

    config = sgi_base(2).scaled(16)
    report = measure_occurrence_variation(
        get_workload("fpppp", 16).program,
        config,
        EngineOptions(profile=SimProfile.fast()),
        repeats=3,
    )
    assert set(report) == {"scf"}
    mean, std, cv = report["scf"]["instructions"]
    assert mean > 0
    assert cv < 0.01  # deterministic phase
