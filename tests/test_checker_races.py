"""The affine dependence test and the declarative-IR race rules."""

from __future__ import annotations

import pytest

from repro.checker import (
    Severity,
    check_nest,
    lint_affine,
    lint_program,
    test_cross_processor as _test_cross_processor,
)
from repro.checker.races import _egcd, _solve_2var
from repro.common import Direction, Partitioning, iteration_ranges
from repro.compiler.affine import (
    AffineNest,
    AffinePhase,
    AffineProgram,
    AffineRef,
    Array2D,
    C,
    I,
    J,
    Subscript,
)
from repro.compiler.ir import (
    ArrayDecl,
    BoundaryAccess,
    Loop,
    LoopKind,
    PartitionedAccess,
    Phase,
    Program,
    StridedAccess,
    WholeArrayAccess,
)
from repro.machine.config import sgi_base

# Aliased so pytest does not collect the analysis entry point as a test.
cross_verdict = _test_cross_processor


def nest(refs, i_extent=32, j_extent=32, kind=LoopKind.PARALLEL, **kwargs):
    return AffineNest(
        name="nest", i_extent=i_extent, j_extent=j_extent,
        refs=tuple(refs), kind=kind, **kwargs,
    )


def cpu_of(i, extent, cpus, part=Partitioning.EVEN, direction=Direction.FORWARD):
    for cpu, (lo, hi) in enumerate(iteration_ranges(extent, cpus, part, direction)):
        if lo <= i < hi:
            return cpu
    raise AssertionError(f"iteration {i} unassigned")


def assert_valid_witness(verdict, num_cpus, n, part=Partitioning.EVEN,
                         direction=Direction.FORWARD):
    """Re-derive the witness: same element, different processors."""
    assert verdict.status == "race"
    i1, j1, i2, j2 = verdict.witness

    def value(sub, i, j):
        return sub.i_coef * i + sub.j_coef * j + sub.const

    assert value(verdict.ref_a.row, i1, j1) == value(verdict.ref_b.row, i2, j2)
    assert value(verdict.ref_a.col, i1, j1) == value(verdict.ref_b.col, i2, j2)
    c1 = cpu_of(i1, n, num_cpus, part, direction)
    c2 = cpu_of(i2, n, num_cpus, part, direction)
    assert c1 != c2
    assert verdict.cpus == (c1, c2)


class TestIntegerMachinery:
    @pytest.mark.parametrize("a,b", [(12, 18), (-12, 18), (12, -18), (-5, -7),
                                     (0, 4), (4, 0), (0, 0), (1, 1)])
    def test_egcd_identity(self, a, b):
        g, x, y = _egcd(a, b)
        assert g == a * x + b * y
        assert g >= 0
        if a or b:
            assert a % g == 0 and b % g == 0

    def test_solve_2var_finds_bounded_solution(self):
        sol = _solve_2var(3, 5, 1, 20, 20)
        assert sol is not None
        x, y = sol
        assert 3 * x - 5 * y == 1
        assert 0 <= x < 20 and 0 <= y < 20

    def test_solve_2var_gcd_infeasible(self):
        assert _solve_2var(4, 6, 3, 100, 100) is None  # gcd(4,6)=2 does not divide 3

    def test_solve_2var_bounds_infeasible(self):
        assert _solve_2var(1, 1, 50, 10, 10) is None  # x - y = 50 needs x >= 50

    def test_solve_2var_degenerate_coefficients(self):
        assert _solve_2var(0, 0, 0, 4, 4) == (0, 0)
        assert _solve_2var(0, 0, 1, 4, 4) is None
        assert _solve_2var(0, 2, -4, 4, 4) == (0, 2)
        assert _solve_2var(2, 0, 4, 4, 4) == (2, 0)


class TestAffineDependence:
    """The canonical shapes of the paper's compiler analyses."""

    def test_own_columns_clean(self):
        # A(j, i): each processor writes its own columns — no overlap.
        ref = AffineRef("A", J(), I(), is_write=True)
        verdict = cross_verdict(ref, ref, nest([ref]), 4)
        assert verdict.status == "clean"

    def test_neighbour_column_read_races(self):
        # Stencil without boundary declaration: read of column i+1
        # crosses into the neighbouring processor's partition.
        write = AffineRef("A", J(), I(), is_write=True)
        read = AffineRef("A", J(), I(1))
        verdict = cross_verdict(write, read, nest([write, read]), 4)
        assert_valid_witness(verdict, 4, 32)
        assert not verdict.is_write_write

    def test_gcd_refutation(self):
        # 2i vs 2i'+1: even and odd rows never meet.
        a = AffineRef("A", Subscript(i_coef=2), J(), is_write=True)
        b = AffineRef("A", Subscript(i_coef=2, const=1), J(), is_write=True)
        verdict = cross_verdict(a, b, nest([a, b], i_extent=16, j_extent=16), 4)
        assert verdict.status == "clean"

    def test_bounds_refutation(self):
        # Row offset beyond the other reference's reach.
        a = AffineRef("A", J(), I(), is_write=True)
        b = AffineRef("A", J(100), I(), is_write=True)
        verdict = cross_verdict(a, b, nest([a, b]), 4)
        assert verdict.status == "clean"

    def test_shared_column_self_pair_races(self):
        # Every processor writes column 0: reduction without privatization.
        ref = AffineRef("A", J(), C(0), is_write=True)
        verdict = cross_verdict(ref, ref, nest([ref]), 4)
        assert_valid_witness(verdict, 4, 32)
        assert verdict.is_write_write

    def test_transpose_races_via_general_path(self):
        # A(i, j) vs A(j, i): neither equation is j-free, so the capped
        # pair enumeration does the work.
        a = AffineRef("A", I(), J(), is_write=True)
        b = AffineRef("A", J(), I())
        verdict = cross_verdict(a, b, nest([a, b]), 4)
        assert_valid_witness(verdict, 4, 32)

    def test_budget_exhaustion_is_unknown_not_clean(self):
        a = AffineRef("A", I(), J(), is_write=True)
        b = AffineRef("A", J(), I())
        verdict = cross_verdict(a, b, nest([a, b]), 4, max_pairs=10)
        assert verdict.status == "unknown"

    def test_single_cpu_is_clean(self):
        ref = AffineRef("A", J(), C(0), is_write=True)
        assert cross_verdict(ref, ref, nest([ref]), 1).status == "clean"

    def test_different_arrays_rejected(self):
        a = AffineRef("A", J(), I(), is_write=True)
        b = AffineRef("B", J(), I(), is_write=True)
        with pytest.raises(ValueError):
            cross_verdict(a, b, nest([a, b]), 4)

    @pytest.mark.parametrize("part", [Partitioning.EVEN, Partitioning.BLOCKED])
    @pytest.mark.parametrize("direction", [Direction.FORWARD, Direction.REVERSE])
    def test_schedule_variants_keep_witness_valid(self, part, direction):
        write = AffineRef("A", J(), I(), is_write=True)
        read = AffineRef("A", J(), I(1))
        n = nest([write, read], i_extent=33, partitioning=part, direction=direction)
        verdict = cross_verdict(write, read, n, 16)
        assert_valid_witness(verdict, 16, 33, part, direction)

    def test_read_read_pairs_are_not_tested(self):
        read = AffineRef("A", J(), C(0))
        report = lint_affine(
            AffineProgram(
                "ro",
                arrays=[Array2D("A", 32, 32)],
                phases=[AffinePhase("p", (nest([read]),))],
            ),
            4,
        )
        assert len(report) == 0


class TestCheckNest:
    def test_write_write_race_is_A001_error(self):
        ref = AffineRef("A", J(), C(0), is_write=True)
        findings = check_nest(nest([ref]), 4, phase="p")
        assert [d.rule_id for d in findings] == ["A001"]
        assert findings[0].severity is Severity.ERROR
        assert findings[0].span == "p/nest[A]"
        assert findings[0].evidence["witness"]

    def test_read_write_race_is_A002_error(self):
        write = AffineRef("A", J(), I(), is_write=True)
        read = AffineRef("A", J(), I(1))
        findings = check_nest(nest([write, read]), 4)
        assert [d.rule_id for d in findings] == ["A002"]

    def test_budget_exhaustion_is_A003_warning(self):
        a = AffineRef("A", I(), J(), is_write=True)
        b = AffineRef("A", J(), I())
        findings = check_nest(nest([a, b]), 4, max_pairs=10)
        assert [d.rule_id for d in findings] == ["A003"]
        assert findings[0].severity is Severity.WARNING

    def test_clean_parallel_nest_has_no_findings(self):
        ref = AffineRef("A", J(), I(), is_write=True)
        assert check_nest(nest([ref]), 4) == []

    def test_needlessly_suppressed_is_A004_info(self):
        ref = AffineRef("A", J(), I(), is_write=True)
        coarse = nest([ref], i_extent=64, kind=LoopKind.SUPPRESSED,
                      instructions_per_point=8.0)
        findings = check_nest(coarse, 4)
        assert [d.rule_id for d in findings] == ["A004"]
        assert findings[0].severity is Severity.INFO

    def test_racy_suppressed_nest_gets_no_A004(self):
        ref = AffineRef("A", J(), C(0), is_write=True)
        coarse = nest([ref], i_extent=64, kind=LoopKind.SUPPRESSED,
                      instructions_per_point=8.0)
        assert check_nest(coarse, 4) == []

    def test_fine_grain_suppressed_nest_gets_no_A004(self):
        ref = AffineRef("A", J(), I(), is_write=True)
        fine = nest([ref], kind=LoopKind.SUPPRESSED, instructions_per_point=1.0)
        assert check_nest(fine, 4) == []

    def test_lint_affine_aggregates_phases(self):
        racy = AffineRef("A", J(), C(0), is_write=True)
        clean = AffineRef("A", J(), I(), is_write=True)
        program = AffineProgram(
            "two",
            arrays=[Array2D("A", 32, 32)],
            phases=[
                AffinePhase("p1", (nest([clean]),)),
                AffinePhase("p2", (nest([racy]),)),
            ],
        )
        report = lint_affine(program, 4)
        assert [d.rule_id for d in report] == ["A001"]
        assert report.errors()[0].phase == "p2"
        assert not report.clean


# ----------------------------------------------------------------------
# Declarative-IR rules (via lint_program on hand-built programs).


PAGE = 4096


def program_of(loops, arrays=None, name="prog"):
    arrays = arrays or (ArrayDecl("x", 64 * PAGE),)
    return Program(name, tuple(arrays), (Phase("p", tuple(loops)),))


def lint(program, cpus=4, **kwargs):
    return lint_program(program, sgi_base(cpus).scaled(16), num_cpus=cpus, **kwargs)


class TestIrRaceRules:
    def test_disjoint_partitioned_writes_are_clean(self):
        loop = Loop("l", LoopKind.PARALLEL,
                    (PartitionedAccess("x", units=64, is_write=True),))
        assert len(lint(program_of([loop]))) == 0

    def test_boundary_write_is_R001_error(self):
        loop = Loop("l", LoopKind.PARALLEL,
                    (BoundaryAccess("x", units=64, is_write=True),))
        report = lint(program_of([loop]))
        errors = report.by_rule("R001")
        assert errors and errors[0].severity is Severity.ERROR
        assert errors[0].array == "x"

    def test_whole_array_write_vs_partitioned_read_is_R001(self):
        loop = Loop("l", LoopKind.PARALLEL, (
            WholeArrayAccess("x", is_write=True),
            PartitionedAccess("x", units=64),
        ))
        assert lint(program_of([loop])).by_rule("R001")

    def test_boundary_read_next_to_partitioned_write_is_clean(self):
        # The declared stencil idiom: reads reach into neighbours, writes
        # stay home.  BoundaryAccess(read) overlapping the write is fine
        # only if the strips don't cross partitions... strips DO cross, so
        # this is exactly the case R001 must flag (read-write).
        loop = Loop("l", LoopKind.PARALLEL, (
            PartitionedAccess("x", units=64, is_write=True),
            BoundaryAccess("x", units=64),
        ))
        report = lint(program_of([loop]))
        hits = report.by_rule("R001")
        assert hits and "read-write" in hits[0].message

    def test_sequential_loop_is_not_checked(self):
        loop = Loop("l", LoopKind.SEQUENTIAL,
                    (BoundaryAccess("x", units=64, is_write=True),))
        assert not lint(program_of([loop])).by_rule("R001")

    def test_single_cpu_never_races(self):
        loop = Loop("l", LoopKind.PARALLEL,
                    (BoundaryAccess("x", units=64, is_write=True),))
        assert not lint(program_of([loop]), cpus=1).by_rule("R001")

    def test_strided_write_vs_partitioned_read_is_R002(self):
        loop = Loop("l", LoopKind.PARALLEL, (
            StridedAccess("x", block_bytes=1024, is_write=True),
            PartitionedAccess("x", units=64),
        ))
        report = lint(program_of([loop]))
        hits = report.by_rule("R002")
        assert hits and hits[0].severity is Severity.ERROR
        assert not report.by_rule("R001")  # strided pairs are R002's job

    def test_identical_strided_writes_are_clean(self):
        loop = Loop("l", LoopKind.PARALLEL, (
            StridedAccess("x", block_bytes=1024, is_write=True),
            StridedAccess("x", block_bytes=1024),
        ))
        assert not lint(program_of([loop])).by_rule("R002")

    def test_mismatched_strided_blocks_are_R002(self):
        loop = Loop("l", LoopKind.PARALLEL, (
            StridedAccess("x", block_bytes=1024, is_write=True),
            StridedAccess("x", block_bytes=2048),
        ))
        assert lint(program_of([loop])).by_rule("R002")

    def test_unaligned_partition_boundary_is_R004(self):
        # 96-byte units on a 128-byte line: written boundaries mid-line.
        arrays = (ArrayDecl("x", 96 * 8),)
        loop = Loop("l", LoopKind.PARALLEL,
                    (PartitionedAccess("x", units=8, is_write=True),))
        report = lint(program_of([loop], arrays))
        hits = report.by_rule("R004")
        assert hits and hits[0].severity is Severity.WARNING

    def test_aligned_partition_boundary_has_no_R004(self):
        loop = Loop("l", LoopKind.PARALLEL,
                    (PartitionedAccess("x", units=64, is_write=True),))
        assert not lint(program_of([loop])).by_rule("R004")

    def test_read_only_misalignment_has_no_R004(self):
        arrays = (ArrayDecl("x", 96 * 8),)
        loop = Loop("l", LoopKind.PARALLEL,
                    (PartitionedAccess("x", units=8),))
        assert not lint(program_of([loop], arrays)).by_rule("R004")

    def test_line_multiple_strided_write_has_no_R004(self):
        loop = Loop("l", LoopKind.PARALLEL,
                    (StridedAccess("x", block_bytes=1024, is_write=True),))
        assert not lint(program_of([loop])).by_rule("R004")

    def test_off_line_strided_write_is_R004(self):
        loop = Loop("l", LoopKind.PARALLEL,
                    (StridedAccess("x", block_bytes=96, is_write=True),))
        assert lint(program_of([loop])).by_rule("R004")

    def test_applu_shape_imbalance_is_R005(self):
        # 33 iterations, 16 processors, blocked: ceil(33/16)=3 per CPU,
        # 11 CPUs used, 5 idle — the Section 4.1 example.
        loop = Loop("l", LoopKind.PARALLEL,
                    (PartitionedAccess("x", units=33, is_write=True,
                                       partitioning=Partitioning.BLOCKED),),
                    iterations=33)
        report = lint(program_of([loop]), cpus=16)
        hits = report.by_rule("R005")
        assert hits and hits[0].severity is Severity.WARNING
        assert hits[0].evidence["imbalance"] >= 0.15
        assert "processors get no work" in hits[0].message

    def test_balanced_schedule_has_no_R005(self):
        loop = Loop("l", LoopKind.PARALLEL,
                    (PartitionedAccess("x", units=64, is_write=True),),
                    iterations=64)
        assert not lint(program_of([loop]), cpus=16).by_rule("R005")

    def test_needlessly_suppressed_loop_is_R006_info(self):
        loop = Loop("l", LoopKind.SUPPRESSED,
                    (PartitionedAccess("x", units=64, is_write=True),),
                    iterations=64, instructions_per_word=8.0)
        report = lint(program_of([loop]), cpus=4)
        hits = report.by_rule("R006")
        assert hits and hits[0].severity is Severity.INFO
        assert report.clean  # INFO-only findings keep the report clean

    def test_racy_suppressed_loop_gets_no_R006(self):
        loop = Loop("l", LoopKind.SUPPRESSED,
                    (BoundaryAccess("x", units=64, is_write=True),),
                    iterations=64, instructions_per_word=8.0)
        assert not lint(program_of([loop]), cpus=4).by_rule("R006")

    def test_strided_suppressed_loop_gets_no_R006(self):
        loop = Loop("l", LoopKind.SUPPRESSED,
                    (StridedAccess("x", block_bytes=1024, is_write=True),),
                    iterations=64, instructions_per_word=8.0)
        assert not lint(program_of([loop]), cpus=4).by_rule("R006")

    def test_fine_grain_suppressed_loop_gets_no_R006(self):
        loop = Loop("l", LoopKind.SUPPRESSED,
                    (PartitionedAccess("x", units=64, is_write=True),),
                    iterations=64, instructions_per_word=1.0)
        assert not lint(program_of([loop]), cpus=4).by_rule("R006")
