"""Shared fixtures: small scaled machine configurations and programs."""

from __future__ import annotations

import pytest

from repro.compiler.ir import (
    ArrayDecl,
    BoundaryAccess,
    Communication,
    Loop,
    LoopKind,
    PartitionedAccess,
    Phase,
    Program,
)
from repro.machine.config import CacheConfig, MachineConfig, sgi_base


@pytest.fixture
def tiny_config() -> MachineConfig:
    """A deliberately tiny machine: 16 colors, small caches, fast tests."""
    return MachineConfig(
        num_cpus=2,
        page_size=256,
        l1d=CacheConfig(1024, 64, 2),
        l1i=CacheConfig(1024, 64, 2),
        l2=CacheConfig(4096, 64, 1),
    )


@pytest.fixture
def scaled_sgi() -> MachineConfig:
    """The paper's base machine scaled 1/16 (256 colors preserved)."""
    return sgi_base(4).scaled(16)


def make_two_array_program(
    page_size: int, pages_per_array: int = 8, units: int = 8
) -> Program:
    """The Figure 4 example: two arrays partitioned across processors."""
    size = pages_per_array * page_size
    a = ArrayDecl("A", size)
    b = ArrayDecl("B", size)
    loop = Loop(
        name="main",
        kind=LoopKind.PARALLEL,
        accesses=(
            PartitionedAccess("A", units=units, is_write=True),
            PartitionedAccess("B", units=units),
        ),
    )
    return Program("fig4", (a, b), (Phase("steady", (loop,)),))


def make_stencil_program(page_size: int, num_arrays: int = 4, pages: int = 16) -> Program:
    """A stencil with shift communication, for coherence/boundary tests."""
    names = tuple(f"s{i}" for i in range(num_arrays))
    arrays = tuple(ArrayDecl(n, pages * page_size) for n in names)
    accesses = [
        PartitionedAccess(n, units=pages, is_write=(i == num_arrays - 1))
        for i, n in enumerate(names)
    ]
    accesses.append(
        BoundaryAccess(names[0], units=pages, comm=Communication.SHIFT,
                       boundary_fraction=1.0)
    )
    loop = Loop("stencil", LoopKind.PARALLEL, tuple(accesses))
    return Program("stencil", arrays, (Phase("steady", (loop,), occurrences=2),))


@pytest.fixture
def fig4_program(tiny_config) -> Program:
    return make_two_array_program(tiny_config.page_size)
