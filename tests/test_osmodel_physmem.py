"""Tests for the physical memory manager."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.osmodel.physmem import (
    CascadeReclaimer,
    HeldFrameReclaimer,
    OutOfMemoryError,
    PhysicalMemory,
)


class TestPhysicalMemory:
    def test_color_of_cycles(self):
        pm = PhysicalMemory(num_frames=32, num_colors=8)
        assert pm.color_of(0) == 0
        assert pm.color_of(8) == 0
        assert pm.color_of(9) == 1

    def test_alloc_honors_preferred_color(self):
        pm = PhysicalMemory(num_frames=32, num_colors=8)
        frame = pm.alloc(preferred_color=3)
        assert pm.color_of(frame) == 3
        assert pm.hints_honored == 1

    def test_alloc_without_preference_takes_any(self):
        pm = PhysicalMemory(num_frames=8, num_colors=8)
        frames = {pm.alloc() for _ in range(8)}
        assert len(frames) == 8

    def test_fallback_spirals_to_nearest_color(self):
        pm = PhysicalMemory(num_frames=8, num_colors=8)  # one frame per color
        pm.alloc(preferred_color=3)
        fallback = pm.alloc(preferred_color=3)
        assert pm.color_of(fallback) in (2, 4)
        assert pm.hints_honored == 1
        assert pm.hint_requests == 2

    def test_hint_honor_rate(self):
        pm = PhysicalMemory(num_frames=8, num_colors=8)
        pm.alloc(preferred_color=0)
        pm.alloc(preferred_color=0)  # falls back
        assert pm.hint_honor_rate == pytest.approx(0.5)

    def test_honor_rate_defaults_to_one(self):
        pm = PhysicalMemory(num_frames=8, num_colors=8)
        assert pm.hint_honor_rate == 1.0

    def test_out_of_memory(self):
        pm = PhysicalMemory(num_frames=8, num_colors=8)
        for _ in range(8):
            pm.alloc()
        with pytest.raises(OutOfMemoryError):
            pm.alloc()
        with pytest.raises(OutOfMemoryError):
            pm.alloc(preferred_color=0)

    def test_free_makes_frame_reusable(self):
        pm = PhysicalMemory(num_frames=8, num_colors=8)
        frame = pm.alloc(preferred_color=5)
        pm.free(frame)
        assert pm.alloc(preferred_color=5) == frame

    def test_free_rejects_out_of_range(self):
        pm = PhysicalMemory(num_frames=8, num_colors=8)
        with pytest.raises(ValueError):
            pm.free(99)

    def test_occupy_fraction_reduces_free_frames(self):
        pm = PhysicalMemory(num_frames=64, num_colors=8)
        taken = pm.occupy_fraction(0.5, seed=1)
        assert len(taken) == 32
        assert pm.free_frames() == 32

    def test_occupy_fraction_is_deterministic(self):
        a = PhysicalMemory(num_frames=64, num_colors=8)
        b = PhysicalMemory(num_frames=64, num_colors=8)
        assert a.occupy_fraction(0.25, seed=7) == b.occupy_fraction(0.25, seed=7)

    def test_occupy_rejects_bad_fraction(self):
        pm = PhysicalMemory(num_frames=8, num_colors=8)
        with pytest.raises(ValueError):
            pm.occupy_fraction(1.5)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            PhysicalMemory(num_frames=4, num_colors=8)
        with pytest.raises(ValueError):
            PhysicalMemory(num_frames=8, num_colors=0)

    def test_free_releases_occupied_frame(self):
        pm = PhysicalMemory(num_frames=64, num_colors=8)
        taken = pm.occupy_fraction(0.5, seed=1)
        free_before = pm.free_frames()
        pm.free(taken[0])
        assert pm.free_frames() == free_before + 1

    @given(st.lists(st.integers(0, 7), min_size=1, max_size=32))
    @settings(max_examples=50, deadline=None)
    def test_no_frame_allocated_twice(self, preferred):
        pm = PhysicalMemory(num_frames=32, num_colors=8)
        allocated = [pm.alloc(color) for color in preferred]
        assert len(set(allocated)) == len(allocated)

    @given(st.integers(1, 16), st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_alloc_free_roundtrip_conserves_frames(self, colors, seed):
        pm = PhysicalMemory(num_frames=colors * 4, num_colors=colors)
        rng = random.Random(seed)
        held = []
        for _ in range(200):
            if held and rng.random() < 0.5:
                pm.free(held.pop())
            elif pm.free_frames():
                held.append(pm.alloc(rng.randrange(colors)))
        assert pm.free_frames() + len(held) == colors * 4


class TestFallbackSpiral:
    def test_candidates_unique_with_even_colors(self):
        # Distance num_colors // 2 reaches the same color from both sides;
        # the spiral must probe it once, not twice.
        pm = PhysicalMemory(num_frames=8, num_colors=8)
        candidates = [c for _, c in pm.fallback_candidates(0)]
        assert len(candidates) == len(set(candidates)) == 7
        assert set(candidates) == set(range(1, 8))

    def test_candidates_unique_with_odd_colors(self):
        pm = PhysicalMemory(num_frames=7, num_colors=7)
        candidates = [c for _, c in pm.fallback_candidates(3)]
        assert len(candidates) == len(set(candidates)) == 6

    def test_opposite_color_probed_at_half_distance(self):
        pm = PhysicalMemory(num_frames=8, num_colors=8)
        distances = dict((c, d) for d, c in pm.fallback_candidates(0))
        assert distances[4] == 4

    def test_fallback_distance_histogram(self):
        pm = PhysicalMemory(num_frames=16, num_colors=8)
        pm.alloc(preferred_color=0)
        pm.alloc(preferred_color=0)
        pm.alloc(preferred_color=0)  # falls back to distance 1
        assert pm.fallback_distance == {0: 2, 1: 1}

    def test_histogram_records_far_fallbacks(self):
        pm = PhysicalMemory(num_frames=8, num_colors=8)
        for color in range(8):
            if color != 4:
                pm.alloc(preferred_color=color)
        # Only the opposite color remains: a hint for 0 lands 4 away.
        frame = pm.alloc(preferred_color=0)
        assert pm.color_of(frame) == 4
        assert pm.fallback_distance[4] == 1


class TestExhaustionAndReclaim:
    def test_hint_honor_rate_under_pressure(self):
        pressured = PhysicalMemory(num_frames=256, num_colors=8)
        pressured.occupy_fraction(0.9, seed=3)
        relaxed = PhysicalMemory(num_frames=256, num_colors=8)
        for pm in (pressured, relaxed):
            for i in range(20):
                pm.alloc(preferred_color=i % 8)
        assert pressured.hint_honor_rate < relaxed.hint_honor_rate
        assert relaxed.hint_honor_rate == 1.0

    def test_double_free_detected(self):
        pm = PhysicalMemory(num_frames=8, num_colors=8)
        frame = pm.alloc()
        pm.free(frame)
        with pytest.raises(ValueError, match="double free"):
            pm.free(frame)

    def test_free_of_never_allocated_frame_detected(self):
        pm = PhysicalMemory(num_frames=8, num_colors=8)
        with pytest.raises(ValueError, match="double free"):
            pm.free(3)

    def test_reclaim_replaces_oom(self):
        pm = PhysicalMemory(num_frames=8, num_colors=8)
        pm.occupy_fraction(1.0, seed=0)  # competing space holds everything
        pm.reclaim_policy = HeldFrameReclaimer()
        frame = pm.alloc(preferred_color=2)
        assert pm.color_of(frame) == 2  # victim chosen to honor the hint
        assert pm.reclaims == 1

    def test_reclaim_unhinted_allocation(self):
        pm = PhysicalMemory(num_frames=8, num_colors=8)
        pm.occupy_fraction(1.0, seed=0)
        pm.reclaim_policy = HeldFrameReclaimer()
        assert pm.alloc() in range(8)

    def test_no_reclaim_policy_still_raises(self):
        pm = PhysicalMemory(num_frames=8, num_colors=8)
        pm.occupy_fraction(1.0, seed=0)
        with pytest.raises(OutOfMemoryError):
            pm.alloc(preferred_color=0)

    def test_exhausted_reclaimer_raises(self):
        pm = PhysicalMemory(num_frames=8, num_colors=8)
        pm.reclaim_policy = HeldFrameReclaimer()  # nothing held to evict
        for _ in range(8):
            pm.alloc()
        with pytest.raises(OutOfMemoryError):
            pm.alloc()

    def test_cascade_tries_policies_in_order(self):
        pm = PhysicalMemory(num_frames=8, num_colors=8)
        pm.occupy_fraction(1.0, seed=0)
        pm.reclaim_policy = CascadeReclaimer([HeldFrameReclaimer()])
        assert pm.alloc(preferred_color=5) is not None
        assert pm.reclaims == 1

    def test_forced_failure_routes_through_reclaim(self):
        pm = PhysicalMemory(num_frames=16, num_colors=8)
        pm.occupy_fraction(0.5, seed=0)
        pm.reclaim_policy = HeldFrameReclaimer()
        pm.fail_hook = lambda color: True
        frame = pm.alloc(preferred_color=1)
        assert pm.forced_failures == 1
        assert pm.reclaims == 1
        assert frame in range(16)

    def test_forced_failure_without_reclaim_raises(self):
        pm = PhysicalMemory(num_frames=16, num_colors=8)
        pm.fail_hook = lambda color: True
        with pytest.raises(OutOfMemoryError):
            pm.alloc(preferred_color=1)
        assert pm.forced_failures == 1

    def test_event_hook_sees_reclaims(self):
        events = []
        pm = PhysicalMemory(num_frames=8, num_colors=8)
        pm.occupy_fraction(1.0, seed=0)
        pm.reclaim_policy = HeldFrameReclaimer()
        pm.event_hook = lambda kind, detail: events.append(kind)
        pm.alloc(preferred_color=0)
        assert "reclaim" in events


class TestCompetingAddressSpaces:
    def test_seize_prefers_skewed_colors(self):
        pm = PhysicalMemory(num_frames=64, num_colors=8)
        rng = random.Random(0)
        seized = pm.seize_frames(16, rng, preferred_colors={0, 1})
        assert len(seized) == 16
        assert all(pm.color_of(f) in (0, 1) for f in seized)
        assert pm.free_frames_of_color(0) == 0
        assert pm.free_frames_of_color(1) == 0

    def test_seize_spills_beyond_skewed_colors(self):
        pm = PhysicalMemory(num_frames=64, num_colors=8)
        rng = random.Random(0)
        seized = pm.seize_frames(24, rng, preferred_colors={0, 1})
        assert len(seized) == 24
        spill = [f for f in seized if pm.color_of(f) not in (0, 1)]
        assert len(spill) == 8

    def test_release_held_returns_frames(self):
        pm = PhysicalMemory(num_frames=64, num_colors=8)
        rng = random.Random(0)
        pm.seize_frames(32, rng)
        released = pm.release_held(10, rng)
        assert len(released) == 10
        assert pm.free_frames() == 64 - 32 + 10
        assert len(pm.held_frames()) == 22

    def test_seize_release_is_deterministic(self):
        def trace(seed):
            pm = PhysicalMemory(num_frames=64, num_colors=8)
            rng = random.Random(seed)
            events = [tuple(pm.seize_frames(20, rng, preferred_colors={2, 3}))]
            events.append(tuple(pm.release_held(7, rng)))
            events.append(tuple(pm.seize_frames(11, rng)))
            return events

        assert trace(9) == trace(9)
        assert trace(9) != trace(10)


class TestCapacityRevocation:
    def test_revoke_removes_capacity(self):
        pm = PhysicalMemory(num_frames=64, num_colors=8)
        revoked = pm.revoke_frames(16)
        assert len(revoked) == 16
        assert pm.capacity_frames() == 48
        assert pm.free_frames() == 48
        assert pm.frames_revoked_total == 16
        assert pm.revoked_frames() == frozenset(revoked)

    def test_revocation_drains_richest_colors_first(self):
        pm = PhysicalMemory(num_frames=64, num_colors=8)
        # Make color 0 poor: only 2 free frames remain there.
        for _ in range(6):
            pm.alloc(preferred_color=0)
        pm.revoke_frames(8)
        # The richest colors (1..7, 8 frames each) pay; the poor color
        # keeps its 2 frames so hints for it stay honorable.
        assert pm.free_frames_of_color(0) == 2

    def test_protected_colors_drained_last(self):
        pm = PhysicalMemory(num_frames=64, num_colors=8)
        pm.revoke_frames(48, protect_colors={2, 3})
        assert pm.free_frames_of_color(2) == 8
        assert pm.free_frames_of_color(3) == 8

    def test_shortfall_recorded_never_raised(self):
        pm = PhysicalMemory(num_frames=8, num_colors=8)
        for _ in range(8):
            pm.alloc()
        revoked = pm.revoke_frames(4)
        assert revoked == []
        assert pm.revocation_shortfall == 4
        assert pm.capacity_frames() == 8

    def test_revocation_reclaims_held_frames(self):
        from repro.osmodel.physmem import HeldFrameReclaimer

        pm = PhysicalMemory(num_frames=16, num_colors=8)
        pm.occupy_fraction(1.0, seed=0)
        pm.revocation_policy = HeldFrameReclaimer()
        revoked = pm.revoke_frames(4)
        assert len(revoked) == 4
        assert pm.revocation_shortfall == 0
        assert pm.reclaims == 4

    def test_restore_returns_revoked_frames(self):
        pm = PhysicalMemory(num_frames=64, num_colors=8)
        revoked = pm.revoke_frames(16)
        restored = pm.restore_frames(8)
        assert restored == sorted(revoked)[:8]
        assert pm.capacity_frames() == 56
        assert pm.frames_restored_total == 8
        pm.restore_frames(100)  # over-restore clamps to what is revoked
        assert pm.capacity_frames() == 64
        assert pm.restore_frames(1) == []

    def test_revoked_frames_not_allocatable(self):
        pm = PhysicalMemory(num_frames=8, num_colors=8)
        pm.revoke_frames(8)
        with pytest.raises(OutOfMemoryError):
            pm.alloc()

    def test_revoke_restore_round_trip_is_deterministic(self):
        def trace():
            pm = PhysicalMemory(num_frames=64, num_colors=8)
            rng = random.Random(5)
            pm.seize_frames(10, rng, preferred_colors={0})
            events = [tuple(pm.revoke_frames(20))]
            events.append(tuple(pm.restore_frames(12)))
            events.append(tuple(pm.revoke_frames(6, protect_colors={1})))
            return events

        assert trace() == trace()

    def test_event_hook_sees_capacity_events(self):
        events = []
        pm = PhysicalMemory(num_frames=64, num_colors=8)
        pm.event_hook = lambda kind, detail: events.append((kind, detail))
        pm.revoke_frames(4)
        pm.restore_frames(4)
        kinds = [kind for kind, _ in events]
        assert kinds == ["capacity_revoked", "capacity_restored"]
        assert events[0][1]["revoked"] == 4
        assert events[1][1]["capacity"] == 64


class TestChurnInvariantsProperty:
    """Random churn sequences never violate frame-ownership invariants."""

    @given(
        st.integers(0, 10_000),
        st.lists(
            st.tuples(st.sampled_from(
                ["alloc", "free", "seize", "release", "revoke", "restore"]
            ), st.integers(1, 24)),
            min_size=1,
            max_size=60,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_four_state_model_survives_any_sequence(self, seed, ops):
        from repro.machine.config import CacheConfig, MachineConfig
        from repro.osmodel.policies import PageColoringPolicy
        from repro.osmodel.vm import VirtualMemory
        from repro.robustness.invariants import check_invariants

        config = MachineConfig(
            num_cpus=2,
            page_size=256,
            l1d=CacheConfig(512, 64, 2),
            l1i=CacheConfig(512, 64, 2),
            l2=CacheConfig(2048, 64, 1),  # 8 colors
        )
        vm = VirtualMemory(config, PageColoringPolicy(config.num_colors))
        pm = vm.physmem
        rng = random.Random(seed)
        mapped: list[int] = []
        next_vpage = 0
        for op, amount in ops:
            if op == "alloc":
                for _ in range(amount):
                    if pm.free_frames() == 0:
                        break
                    vm.ensure_mapped(next_vpage)
                    mapped.append(next_vpage)
                    next_vpage += 1
            elif op == "free":
                for _ in range(min(amount, len(mapped))):
                    vpage = mapped.pop(rng.randrange(len(mapped)))
                    frame = vm.page_table.frame_of(vpage)
                    vm.page_table.unmap(vpage)
                    pm.free(frame)
            elif op == "seize":
                pm.seize_frames(amount, rng, preferred_colors={0, 1})
            elif op == "release":
                pm.release_held(amount, rng)
            elif op == "revoke":
                pm.revoke_frames(amount)
            elif op == "restore":
                pm.restore_frames(amount)
            check_invariants(vm).raise_if_failed()
        # Conservation at the end, independent of the checker.
        accounted = (
            pm.free_frames()
            + len(pm.allocated_frames())
            + len(pm.held_frames())
            + len(pm.revoked_frames())
        )
        assert accounted == pm.num_frames
