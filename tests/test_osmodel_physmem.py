"""Tests for the physical memory manager."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.osmodel.physmem import OutOfMemoryError, PhysicalMemory


class TestPhysicalMemory:
    def test_color_of_cycles(self):
        pm = PhysicalMemory(num_frames=32, num_colors=8)
        assert pm.color_of(0) == 0
        assert pm.color_of(8) == 0
        assert pm.color_of(9) == 1

    def test_alloc_honors_preferred_color(self):
        pm = PhysicalMemory(num_frames=32, num_colors=8)
        frame = pm.alloc(preferred_color=3)
        assert pm.color_of(frame) == 3
        assert pm.hints_honored == 1

    def test_alloc_without_preference_takes_any(self):
        pm = PhysicalMemory(num_frames=8, num_colors=8)
        frames = {pm.alloc() for _ in range(8)}
        assert len(frames) == 8

    def test_fallback_spirals_to_nearest_color(self):
        pm = PhysicalMemory(num_frames=8, num_colors=8)  # one frame per color
        pm.alloc(preferred_color=3)
        fallback = pm.alloc(preferred_color=3)
        assert pm.color_of(fallback) in (2, 4)
        assert pm.hints_honored == 1
        assert pm.hint_requests == 2

    def test_hint_honor_rate(self):
        pm = PhysicalMemory(num_frames=8, num_colors=8)
        pm.alloc(preferred_color=0)
        pm.alloc(preferred_color=0)  # falls back
        assert pm.hint_honor_rate == pytest.approx(0.5)

    def test_honor_rate_defaults_to_one(self):
        pm = PhysicalMemory(num_frames=8, num_colors=8)
        assert pm.hint_honor_rate == 1.0

    def test_out_of_memory(self):
        pm = PhysicalMemory(num_frames=8, num_colors=8)
        for _ in range(8):
            pm.alloc()
        with pytest.raises(OutOfMemoryError):
            pm.alloc()
        with pytest.raises(OutOfMemoryError):
            pm.alloc(preferred_color=0)

    def test_free_makes_frame_reusable(self):
        pm = PhysicalMemory(num_frames=8, num_colors=8)
        frame = pm.alloc(preferred_color=5)
        pm.free(frame)
        assert pm.alloc(preferred_color=5) == frame

    def test_free_rejects_out_of_range(self):
        pm = PhysicalMemory(num_frames=8, num_colors=8)
        with pytest.raises(ValueError):
            pm.free(99)

    def test_occupy_fraction_reduces_free_frames(self):
        pm = PhysicalMemory(num_frames=64, num_colors=8)
        taken = pm.occupy_fraction(0.5, seed=1)
        assert len(taken) == 32
        assert pm.free_frames() == 32

    def test_occupy_fraction_is_deterministic(self):
        a = PhysicalMemory(num_frames=64, num_colors=8)
        b = PhysicalMemory(num_frames=64, num_colors=8)
        assert a.occupy_fraction(0.25, seed=7) == b.occupy_fraction(0.25, seed=7)

    def test_occupy_rejects_bad_fraction(self):
        pm = PhysicalMemory(num_frames=8, num_colors=8)
        with pytest.raises(ValueError):
            pm.occupy_fraction(1.5)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            PhysicalMemory(num_frames=4, num_colors=8)
        with pytest.raises(ValueError):
            PhysicalMemory(num_frames=8, num_colors=0)

    @given(st.lists(st.integers(0, 7), min_size=1, max_size=32))
    @settings(max_examples=50, deadline=None)
    def test_no_frame_allocated_twice(self, preferred):
        pm = PhysicalMemory(num_frames=32, num_colors=8)
        allocated = [pm.alloc(color) for color in preferred]
        assert len(set(allocated)) == len(allocated)

    @given(st.integers(1, 16), st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_alloc_free_roundtrip_conserves_frames(self, colors, seed):
        pm = PhysicalMemory(num_frames=colors * 4, num_colors=colors)
        import random

        rng = random.Random(seed)
        held = []
        for _ in range(200):
            if held and rng.random() < 0.5:
                pm.free(held.pop())
            elif pm.free_frames():
                held.append(pm.alloc(rng.randrange(colors)))
        assert pm.free_frames() + len(held) == colors * 4
