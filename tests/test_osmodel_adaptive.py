"""Tests for the adaptive CDPC re-planner and transactional migration.

Covers the capacity-churn machinery the dynamic-recoloring tests do not:
demand-driven plan remapping, grantable-capacity accounting, and the
transactional abort paths when capacity is revoked in the migration copy
window (the worst possible moment).
"""

import pytest

from repro.machine.config import CacheConfig, MachineConfig
from repro.machine.memory_system import MemorySystem
from repro.osmodel.dynamic import (
    AdaptiveCdpc,
    DynamicRecolorer,
    MigrationAborted,
    migrate_page,
    remap_plan_colors,
)
from repro.osmodel.physmem import OutOfMemoryError
from repro.osmodel.policies import PageColoringPolicy
from repro.osmodel.vm import VirtualMemory
from repro.robustness.invariants import check_invariants


def machine(num_cpus=2) -> MachineConfig:
    return MachineConfig(
        num_cpus=num_cpus,
        page_size=256,
        l1d=CacheConfig(512, 64, 2),
        l1i=CacheConfig(512, 64, 2),
        l2=CacheConfig(4096, 64, 1),  # 16 colors
    )


def build():
    config = machine()
    vm = VirtualMemory(config, PageColoringPolicy(config.num_colors))
    ms = MemorySystem(config)
    return config, vm, ms


class TestRemapPlanColors:
    def test_even_capacity_keeps_identity(self):
        # Four classes, one page each, four frames free on every color:
        # the greedy pack has no reason to move anything.
        plan = {0: 0, 1: 1, 2: 2, 3: 3}
        remapped = remap_plan_colors(plan, [4, 4, 4, 4])
        assert set(remapped.values()) == {0, 1, 2, 3}

    def test_folds_onto_surviving_capacity(self):
        # Colors 0 and 1 are capacity-dead; every demanding class must
        # land on the surviving band even if that means sharing colors.
        plan = {0: 0, 1: 1, 2: 2, 3: 3}
        remapped = remap_plan_colors(plan, [0, 0, 8, 8])
        assert set(remapped.values()) <= {2, 3}

    def test_demand_drives_packing_order(self):
        # Class 0 has demand 3, class 1 demand 1; the single rich color
        # must go to the demanding class.
        plan = {0: 0, 10: 0, 20: 0, 1: 1}
        remapped = remap_plan_colors(
            plan, [1, 1, 9, 1], demand_by_color=[3, 1, 0, 0]
        )
        assert remapped[0] == remapped[10] == remapped[20] == 2

    def test_zero_demand_class_keeps_color(self):
        # Class 1's pages are all mapped (zero demand): moving its hint
        # would only trigger migrations, so it stays put.
        plan = {0: 0, 1: 1}
        remapped = remap_plan_colors(
            plan, [0, 0, 8, 8], demand_by_color=[2, 0, 0, 0]
        )
        assert remapped[1] == 1
        assert remapped[0] in (2, 3)

    def test_deterministic(self):
        plan = {v: v % 4 for v in range(32)}
        capacity = [3, 7, 0, 5]
        assert remap_plan_colors(plan, capacity) == remap_plan_colors(
            plan, capacity
        )


class TestCapacityAndDemand:
    def test_capacity_counts_free_and_held_not_own_or_revoked(self):
        _, vm, ms = build()
        pm = vm.physmem
        adaptive = AdaptiveCdpc(vm, ms, plan_colors={})
        baseline = adaptive.capacity_by_color()
        assert baseline == [
            pm.free_frames_of_color(c) for c in range(pm.num_colors)
        ]
        # Held frames still count (the held-frame reclaimer can evict a
        # matching-color competitor frame on demand) ...
        pm.occupy_fraction(0.25, seed=1)
        assert sum(adaptive.capacity_by_color()) == sum(baseline)
        # ... frames this address space maps do not ...
        vm.ensure_mapped(0)
        assert sum(adaptive.capacity_by_color()) == sum(baseline) - 1
        # ... and revoked frames are truly gone.
        revoked = pm.revoke_frames(8)
        assert sum(adaptive.capacity_by_color()) == sum(baseline) - 1 - len(
            revoked
        )

    def test_demand_counts_only_unmapped_plan_pages(self):
        _, vm, ms = build()
        plan = {0: 2, 1: 2, 2: 5}
        adaptive = AdaptiveCdpc(vm, ms, plan_colors=plan)
        assert adaptive.demand_by_color()[2] == 2
        assert adaptive.demand_by_color()[5] == 1
        vm.ensure_mapped(0)
        assert adaptive.demand_by_color()[2] == 1


class TestReplan:
    def _conflicted_setup(self):
        config, vm, ms = build()
        # Plan puts pages 0..3 on distinct colors; map them, then mark
        # them stale by planning different colors than they sit on.
        for vpage in range(4):
            vm.ensure_mapped(vpage)
        plan = {
            vpage: (vm.color_of_vpage(vpage) + 1) % config.num_colors
            for vpage in range(4)
        }
        return config, vm, ms, AdaptiveCdpc(vm, ms, plan_colors=plan)

    def test_replan_migrates_stale_pages(self):
        _, vm, ms, adaptive = self._conflicted_setup()
        event = adaptive.replan(honor_rate=0.3)
        assert event.migrations
        assert not event.aborted
        assert event.cost_ns > 0
        for migration in event.migrations:
            assert vm.page_table.frame_of(migration.vpage) == migration.new_frame
        check_invariants(vm, ms).raise_if_failed()

    def test_replan_respects_migration_budget(self):
        _, vm, ms, adaptive = self._conflicted_setup()
        adaptive.max_migrations = 2
        event = adaptive.replan()
        assert len(event.migrations) <= 2

    def test_revocation_in_copy_window_aborts_transactionally(self):
        # Capacity revoked between the copy and the remap: the migration
        # must abort, return the staged frame, and leave every invariant
        # intact — the new hint table still installs.
        _, vm, ms, adaptive = self._conflicted_setup()
        pm = vm.physmem

        def revoke_everything(vpage, old_frame, new_frame):
            pm.revoke_frames(pm.free_frames(), reclaim=False)
            raise OutOfMemoryError("capacity revoked mid-copy")

        adaptive.pre_remap_hook = revoke_everything
        mapped_before = dict(vm.page_table.mappings())
        seen = []
        adaptive.on_degradation = lambda kind, detail: seen.append(kind)
        event = adaptive.replan(honor_rate=0.2)
        assert event.aborted
        assert event.migrations == []
        assert event.hints  # the re-planned hints still install
        assert adaptive.aborted_replans == 1
        assert dict(vm.page_table.mappings()) == mapped_before
        check_invariants(vm, ms).raise_if_failed()
        assert "aborted_replan" in seen

    def test_counters_accumulate_across_replans(self):
        _, vm, ms, adaptive = self._conflicted_setup()
        first = adaptive.replan()
        adaptive.replan()
        assert adaptive.total_replans == 2
        assert adaptive.total_migrations >= len(first.migrations)


class TestMigratePageTransaction:
    def test_commit_moves_page_and_conserves_frames(self):
        _, vm, ms = build()
        vm.ensure_mapped(0)
        frame = vm.page_table.frame_of(0)
        free_before = vm.physmem.free_frames()
        target = (vm.physmem.color_of(frame) + 3) % vm.physmem.num_colors
        event = migrate_page(vm, ms, 0, frame, target)
        assert event is not None
        assert vm.physmem.color_of(event.new_frame) == target
        assert vm.physmem.free_frames() == free_before
        check_invariants(vm, ms).raise_if_failed()

    def test_stale_mapping_skips_and_returns_staged_frame(self):
        _, vm, ms = build()
        vm.ensure_mapped(0)
        frame = vm.page_table.frame_of(0)
        free_before = vm.physmem.free_frames()
        # Lie about the current frame: the verify step must drop the
        # migration and return the staged frame.
        event = migrate_page(vm, ms, 0, frame + 1, 5)
        assert event is None
        assert vm.page_table.frame_of(0) == frame
        assert vm.physmem.free_frames() == free_before
        check_invariants(vm, ms).raise_if_failed()

    def test_exhaustion_raises_migration_aborted(self):
        _, vm, ms = build()
        vm.ensure_mapped(0)
        frame = vm.page_table.frame_of(0)
        vm.physmem.occupy_fraction(1.0, seed=0)
        with pytest.raises(MigrationAborted):
            migrate_page(vm, ms, 0, frame, 5)
        assert vm.page_table.frame_of(0) == frame
        check_invariants(vm, ms).raise_if_failed()


class TestRecolorerRevocationRegression:
    """Regression: capacity revoked between copy and remap (satellite 1)."""

    def _conflicted(self):
        config, vm, ms = build()
        recolorer = DynamicRecolorer(vm, ms, threshold=2, max_per_step=4)
        for vpage in (0, 16, 32):
            vm.ensure_mapped(vpage)
        for _ in range(8):
            for vpage in (0, 16, 32):
                addr = vpage * config.page_size
                ms.access(0, 0.0, addr, vm.translate(addr), is_write=False)
        return vm, ms, recolorer

    def test_revocation_mid_migration_aborts_cleanly(self):
        vm, ms, recolorer = self._conflicted()
        pm = vm.physmem

        def revoke_mid_copy(vpage, old_frame, new_frame):
            pm.revoke_frames(pm.free_frames(), reclaim=False)
            raise OutOfMemoryError("host revoked capacity mid-copy")

        recolorer.pre_remap_hook = revoke_mid_copy
        mapped_before = dict(vm.page_table.mappings())
        events, cost = recolorer.step(0.0)
        assert events == [] and cost == 0.0
        assert recolorer.aborted_steps == 1
        assert dict(vm.page_table.mappings()) == mapped_before
        check_invariants(vm, ms).raise_if_failed()

    def test_nonfatal_revocation_lets_migration_commit(self):
        # A revocation that leaves the staged frame alone must not stop
        # the commit — and the four-state accounting must still balance.
        vm, ms, recolorer = self._conflicted()
        pm = vm.physmem
        recolorer.pre_remap_hook = lambda *_: pm.revoke_frames(
            4, reclaim=False
        )
        events, _ = recolorer.step(0.0)
        assert events
        assert pm.frames_revoked_total >= 4
        check_invariants(vm, ms).raise_if_failed()
