"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "swim"])
        assert args.cpus == 8
        assert args.machine == "sgi_base"
        assert args.scale == 16
        assert not args.cdpc

    def test_run_flags(self):
        args = build_parser().parse_args(
            ["run", "applu", "--cpus", "4", "--machine", "alpha", "--cdpc",
             "--prefetch", "--fast"]
        )
        assert args.cpus == 4
        assert args.machine == "alpha"
        assert args.cdpc and args.prefetch and args.fast

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "gcc"])

    def test_sweep_policies_default(self):
        args = build_parser().parse_args(["sweep", "swim"])
        assert args.policies == "page_coloring,bin_hopping,cdpc"


class TestCommands:
    def test_list_prints_all_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for spec_id in ("101.tomcatv", "146.wave5"):
            assert spec_id in out

    def test_run_prints_result(self, capsys):
        code = main(["run", "fpppp", "--cpus", "2", "--fast"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fpppp@2cpu" in out
        assert "wall ms" in out

    def test_sweep_prints_each_policy(self, capsys):
        code = main(
            ["sweep", "fpppp", "--cpus", "2", "--fast",
             "--policies", "page_coloring,cdpc"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "page_coloring" in out
        assert "cdpc" in out


class TestRunfile:
    WORKLOAD_TEXT = (
        "program demo\n"
        "array a 2097152\n"
        "phase p occurrences 2\n"
        "  parallel loop l ipw 3.0\n"
        "    write a partitioned units 64\n"
    )

    def test_runfile_executes_text_workload(self, tmp_path, capsys):
        path = tmp_path / "demo.workload"
        path.write_text(self.WORKLOAD_TEXT)
        code = main(["runfile", str(path), "--cpus", "2", "--fast"])
        assert code == 0
        out = capsys.readouterr().out
        assert "demo@2cpu" in out

    def test_runfile_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "demo.workload"
        path.write_text(self.WORKLOAD_TEXT)
        code = main(["runfile", str(path), "--cpus", "2", "--fast", "--json",
                     "--cdpc"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "demo"
        assert payload["cdpc"] is True
        assert payload["wall_ns"] > 0

    def test_runfile_scales_sizes(self, tmp_path, capsys):
        import json

        path = tmp_path / "demo.workload"
        path.write_text(self.WORKLOAD_TEXT)
        main(["runfile", str(path), "--cpus", "2", "--fast", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["scale_factor"] == 16
