"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "swim"])
        assert args.cpus == 8
        assert args.machine == "sgi_base"
        assert args.scale == 16
        assert not args.cdpc

    def test_run_flags(self):
        args = build_parser().parse_args(
            ["run", "applu", "--cpus", "4", "--machine", "alpha", "--cdpc",
             "--prefetch", "--fast"]
        )
        assert args.cpus == 4
        assert args.machine == "alpha"
        assert args.cdpc and args.prefetch and args.fast

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "gcc"])

    def test_sweep_policies_default(self):
        args = build_parser().parse_args(["sweep", "swim"])
        assert args.policies == "page_coloring,bin_hopping,cdpc"


class TestCommands:
    def test_list_prints_all_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for spec_id in ("101.tomcatv", "146.wave5"):
            assert spec_id in out

    def test_run_prints_result(self, capsys):
        code = main(["run", "fpppp", "--cpus", "2", "--fast"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fpppp@2cpu" in out
        assert "wall ms" in out

    def test_sweep_prints_each_policy(self, capsys):
        code = main(
            ["sweep", "fpppp", "--cpus", "2", "--fast",
             "--policies", "page_coloring,cdpc"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "page_coloring" in out
        assert "cdpc" in out
        assert "campaign:" in out

    def test_sweep_store_then_resume(self, tmp_path, capsys):
        store = str(tmp_path / "campaigns")
        argv = ["sweep", "fpppp", "--cpus", "2", "--fast",
                "--workers", "1", "--store", store]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "loaded from store" not in first
        # Same sweep again: every run is served from the durable store.
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "3 loaded from store" in second

    def test_sweep_json_includes_campaign_report(self, tmp_path, capsys):
        import json as jsonlib

        store = str(tmp_path / "campaigns")
        code = main(
            ["sweep", "fpppp", "--cpus", "2", "--fast", "--json",
             "--workers", "1", "--store", store,
             "--policies", "page_coloring,cdpc"]
        )
        assert code == 0
        payload = jsonlib.loads(capsys.readouterr().out)
        assert payload["campaign"]["completed"] == 2
        assert payload["campaign"]["ok"] is True
        assert payload["page_coloring"]["policy"] == "page_coloring"

    def test_sweep_resume_flag_parses_with_default_store(self):
        args = build_parser().parse_args(["sweep", "swim", "--resume"])
        assert args.resume
        assert args.store is None  # filled with the default at run time


class TestRunfile:
    WORKLOAD_TEXT = (
        "program demo\n"
        "array a 2097152\n"
        "phase p occurrences 2\n"
        "  parallel loop l ipw 3.0\n"
        "    write a partitioned units 64\n"
    )

    def test_runfile_executes_text_workload(self, tmp_path, capsys):
        path = tmp_path / "demo.workload"
        path.write_text(self.WORKLOAD_TEXT)
        code = main(["runfile", str(path), "--cpus", "2", "--fast"])
        assert code == 0
        out = capsys.readouterr().out
        assert "demo@2cpu" in out

    def test_runfile_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "demo.workload"
        path.write_text(self.WORKLOAD_TEXT)
        code = main(["runfile", str(path), "--cpus", "2", "--fast", "--json",
                     "--cdpc"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "demo"
        assert payload["cdpc"] is True
        assert payload["wall_ns"] > 0

    def test_runfile_scales_sizes(self, tmp_path, capsys):
        import json

        path = tmp_path / "demo.workload"
        path.write_text(self.WORKLOAD_TEXT)
        main(["runfile", str(path), "--cpus", "2", "--fast", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["scale_factor"] == 16


class TestLint:
    RACY_TEXT = (
        "program racy\n"
        "array a 2097152\n"
        "phase p\n"
        "  parallel loop l ipw 3.0\n"
        "    write a boundary units 64 shift 0.5\n"
    )

    def test_lint_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert args.workload == "all"
        assert args.cpus == 16
        assert args.scale == 16
        assert args.format == "text"
        assert not args.strict

    def test_lint_rejects_unknown_format(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lint", "--format", "xml"])

    def test_lint_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lint", "gcc"])

    def test_lint_help_describes_the_command(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["lint", "--help"])
        assert excinfo.value.code == 0
        assert "lint" in capsys.readouterr().out

    def test_lint_single_workload_text(self, capsys):
        assert main(["lint", "tomcatv"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_reports_su2cor_strided(self, capsys):
        assert main(["lint", "su2cor"]) == 0
        assert "C003" in capsys.readouterr().out

    def test_lint_all_workloads_json(self, capsys):
        import json

        assert main(["lint", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cpus"] == 16
        assert payload["num_errors"] == 0
        names = [report["program"] for report in payload["reports"]]
        assert "tomcatv" in names and "applu" in names

    def test_lint_file_reports_error_but_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "racy.workload"
        path.write_text(self.RACY_TEXT)
        assert main(["lint", "--file", str(path)]) == 0
        assert "R001" in capsys.readouterr().out

    def test_lint_strict_fails_on_error_findings(self, tmp_path, capsys):
        path = tmp_path / "racy.workload"
        path.write_text(self.RACY_TEXT)
        assert main(["lint", "--file", str(path), "--strict"]) == 1
        assert "ERROR" in capsys.readouterr().out

    def test_lint_strict_passes_clean_workloads(self, capsys):
        assert main(["lint", "swim", "--strict"]) == 0
        capsys.readouterr()


class TestScenarioCommand:
    def test_parser_run_defaults(self):
        args = build_parser().parse_args(["scenario", "run"])
        assert args.scenario_command == "run"
        assert args.name == "smoke"
        assert args.spec is None
        assert args.width == 40
        assert args.cpus == 8 and args.scale == 16

    def test_parser_sweep_defaults(self):
        args = build_parser().parse_args(["scenario", "sweep"])
        assert args.scenarios == "smoke,churn"

    def test_parser_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario"])

    def test_list_prints_presets(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        assert "smoke" in out and "churn" in out

    def test_run_prints_mode_table_and_figure(self, capsys):
        code = main(
            ["scenario", "run", "smoke", "--cpus", "2", "--scale", "4",
             "--fast", "--workers", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        for mode in ("cdpc-adaptive", "dynamic-recolor", "bin-hopping"):
            assert mode in out
        assert "hint honor rate" in out
        assert "capacity timeline" in out

    def test_run_json_payload(self, capsys):
        import json as jsonlib

        code = main(
            ["scenario", "run", "smoke", "--cpus", "2", "--scale", "4",
             "--fast", "--workers", "1", "--json"]
        )
        assert code == 0
        payload = jsonlib.loads(capsys.readouterr().out)
        assert payload["scenario"]["name"] == "smoke"
        assert sorted(payload["honor_rates"]) == [
            "bin-hopping", "cdpc-adaptive", "dynamic-recolor"
        ]
        assert "degradation" in payload

    def test_run_spec_file(self, tmp_path, capsys):
        import json as jsonlib

        spec_path = tmp_path / "scenario.json"
        spec_path.write_text(jsonlib.dumps({
            "name": "from-file",
            "workload": "fpppp",
            "seed": 2,
            "capacity_events": [{"beat": 1, "delta_frames": -0.2}],
        }))
        code = main(
            ["scenario", "run", "--spec", str(spec_path), "--cpus", "2",
             "--scale", "4", "--fast", "--workers", "1"]
        )
        assert code == 0
        assert "from-file" in capsys.readouterr().out

    def test_run_rejects_unknown_preset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario", "run", "no-such-preset"])
