"""Tests for representative windows and result aggregation."""

import pytest

from repro.compiler.ir import ArrayDecl, Loop, LoopKind, PartitionedAccess, Phase, Program
from repro.machine.config import sgi_base
from repro.machine.stats import CpuStats, MachineStats, MissKind
from repro.sim.results import RunResult, add_scaled_cpu_stats, add_scaled_stats
from repro.sim.windows import occurrence_variation, representative_window


def program_with_phases(occurrences=(3, 7)):
    arrays = (ArrayDecl("a", 4096),)
    loop = Loop("l", LoopKind.PARALLEL, (PartitionedAccess("a", units=16),))
    phases = tuple(
        Phase(f"ph{i}", (loop,), occurrences=occ) for i, occ in enumerate(occurrences)
    )
    return Program("p", arrays, phases)


class TestWindows:
    def test_window_contains_each_phase_once(self):
        program = program_with_phases((3, 7))
        window = representative_window(program)
        assert [p.name for p in window.measured] == ["ph0", "ph1"]
        assert window.weights == (3, 7)
        assert window.total_occurrences == 10

    def test_warmup_mirrors_measured(self):
        window = representative_window(program_with_phases((5,)))
        assert window.warmup == window.measured

    def test_weight_of(self):
        program = program_with_phases((3, 7))
        window = representative_window(program)
        assert window.weight_of(program.phases[1]) == 7
        with pytest.raises(KeyError):
            window.weight_of(Phase("other", program.phases[0].loops))

    def test_occurrence_variation(self):
        mean, std, cv = occurrence_variation([10.0, 10.0, 10.0])
        assert (mean, std, cv) == (10.0, 0.0, 0.0)
        mean, std, cv = occurrence_variation([9.0, 11.0])
        assert mean == 10.0
        assert std == pytest.approx(1.4142, rel=1e-3)
        assert cv == pytest.approx(0.1414, rel=1e-3)

    def test_occurrence_variation_single_sample(self):
        assert occurrence_variation([5.0]) == (5.0, 0.0, 0.0)

    def test_occurrence_variation_empty_rejected(self):
        with pytest.raises(ValueError):
            occurrence_variation([])


class TestStatsAggregation:
    def filled_stats(self) -> CpuStats:
        stats = CpuStats()
        stats.instructions = 100
        stats.busy_ns = 250.0
        stats.l2_misses[MissKind.CONFLICT] = 10
        stats.l2_stall_ns[MissKind.CONFLICT] = 5000.0
        stats.overhead_ns["kernel"] = 42.0
        return stats

    def test_add_scaled_cpu_stats(self):
        dst = CpuStats()
        add_scaled_cpu_stats(dst, self.filled_stats(), 3)
        assert dst.instructions == 300
        assert dst.busy_ns == 750.0
        assert dst.l2_misses[MissKind.CONFLICT] == 30
        assert dst.l2_stall_ns[MissKind.CONFLICT] == 15000.0
        assert dst.overhead_ns["kernel"] == 126.0

    def test_add_scaled_stats_accumulates(self):
        dst = MachineStats.for_cpus(2)
        src = MachineStats(cpus=[self.filled_stats(), self.filled_stats()])
        add_scaled_stats(dst, src, 2)
        add_scaled_stats(dst, src, 1)
        assert dst.cpus[1].instructions == 300


class TestRunResult:
    def make_result(self, wall=1000.0) -> RunResult:
        stats = MachineStats.for_cpus(2)
        for cpu in stats.cpus:
            cpu.instructions = 1000
            cpu.busy_ns = 2500.0
            cpu.l2_stall_ns[MissKind.CONFLICT] = 2500.0
            cpu.l2_misses[MissKind.CONFLICT] = 5
            cpu.l2_misses[MissKind.TRUE_SHARING] = 2
        return RunResult(
            workload="w",
            policy="page_coloring",
            num_cpus=2,
            config=sgi_base(2),
            stats=stats,
            wall_ns=wall,
            bus_busy_ns={"data": 250.0, "writeback": 250.0},
        )

    def test_mcpi(self):
        result = self.make_result()
        # stall 2500ns over 1000 instr at 2.5ns/cycle -> MCPI 1.0.
        assert result.mcpi() == pytest.approx(1.0)

    def test_mcpi_breakdown_sums_to_mcpi(self):
        result = self.make_result()
        assert sum(result.mcpi_breakdown().values()) == pytest.approx(result.mcpi())

    def test_miss_accounting(self):
        result = self.make_result()
        assert result.replacement_misses() == 10
        assert result.communication_misses() == 4
        assert result.miss_breakdown()["conflict"] == 10

    def test_bus_utilization(self):
        result = self.make_result(wall=1000.0)
        assert result.bus_utilization() == pytest.approx(0.5)
        assert result.bus_utilization_breakdown()["data"] == pytest.approx(0.25)

    def test_speedup_over(self):
        fast = self.make_result(wall=500.0)
        slow = self.make_result(wall=1000.0)
        assert fast.speedup_over(slow) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            RunResult("w", "p", 1, sgi_base(1)).speedup_over(slow)

    def test_measured_time_projects_scale(self):
        result = self.make_result(wall=1e6)  # 1 ms
        config16 = sgi_base(2).scaled(16)
        result.config = config16
        assert result.measured_time_s(steady_state_repeats=100.0) == pytest.approx(
            1e6 * 100 * 16 / 1e9
        )

    def test_label(self):
        result = self.make_result()
        assert result.label() == "w@2cpu[page_coloring]"
        result.cdpc = True
        result.prefetch = True
        result.aligned = False
        assert result.label() == "w@2cpu[page_coloring+cdpc+pf+unaligned]"

    def test_combined_execution_includes_overheads(self):
        result = self.make_result()
        result.stats.cpus[0].overhead_ns["sequential"] = 1000.0
        combined = result.combined_execution_ns
        # busy + stall per cpu = 5000; plus 1000 overhead on cpu0.
        assert combined == pytest.approx(11000.0)
        assert result.overhead_breakdown_ns()["sequential"] == 1000.0


class TestArrayMissAttribution:
    def test_attribution_labels_arrays_and_instructions(self):
        from repro.machine.config import sgi_base
        from repro.sim.engine import EngineOptions, run_benchmark
        from repro.sim.tracegen import SimProfile

        config = sgi_base(4).scaled(16)
        result = run_benchmark(
            "fpppp", config, EngineOptions(profile=SimProfile.fast())
        )
        assert "instructions" in result.array_misses
        assert set(result.array_misses) <= {"integrals", "density",
                                            "instructions", "other"}

    def test_strided_array_dominates_su2cor(self):
        from repro.machine.config import sgi_base
        from repro.sim.engine import EngineOptions, run_benchmark
        from repro.sim.tracegen import SimProfile

        config = sgi_base(8).scaled(16)
        result = run_benchmark(
            "su2cor", config, EngineOptions(profile=SimProfile.fast())
        )
        top = max(result.array_misses, key=result.array_misses.get)
        assert top in ("u1", "u2")  # the unsummarizable gauge arrays

    def test_attribution_in_to_dict(self):
        from repro.machine.config import sgi_base
        from repro.sim.engine import EngineOptions, run_benchmark
        from repro.sim.tracegen import SimProfile

        config = sgi_base(2).scaled(16)
        result = run_benchmark(
            "fpppp", config, EngineOptions(profile=SimProfile.fast())
        )
        assert result.to_dict()["array_misses"] == result.array_misses
