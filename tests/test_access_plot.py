"""Tests for the ASCII access-pattern plot (Figures 3/5 rendering)."""

import pytest

from repro.analysis.access_plot import render_access_map


def ordered(pairs):
    return [(page, frozenset(cpus)) for page, cpus in pairs]


class TestRenderAccessMap:
    def test_marks_each_cpu_row(self):
        plot = render_access_map(
            ordered([(0, {0}), (1, {1}), (2, {0, 1})]), num_cpus=2, width=3
        )
        lines = plot.splitlines()
        assert lines[0] == "cpu0 |# #|"
        assert lines[1] == "cpu1 | ##|"

    def test_downsamples_to_width(self):
        pairs = ordered([(i, {0}) for i in range(100)])
        plot = render_access_map(pairs, num_cpus=1, width=10)
        row = plot.splitlines()[0]
        assert row.count("#") == 10

    def test_empty_map(self):
        assert render_access_map([], 2) == "(no pages)"

    def test_cache_scale_line(self):
        pairs = ordered([(i, {0}) for i in range(8)])
        plot = render_access_map(pairs, num_cpus=1, width=8, cache_pages=4)
        lines = plot.splitlines()
        assert lines[-1].endswith("' = one cache")
        assert "'" in lines[-1]

    def test_out_of_range_cpu_ignored(self):
        plot = render_access_map(ordered([(0, {5})]), num_cpus=2, width=1)
        assert "#" not in plot

    def test_validation(self):
        with pytest.raises(ValueError):
            render_access_map([], 0)
        with pytest.raises(ValueError):
            render_access_map([], 2, width=0)

    def test_sparse_vs_dense_visual_difference(self):
        """The Figure 3 vs Figure 5 contrast: scattered marks vs a block."""
        sparse = ordered([(i, {0} if i % 4 == 0 else set()) for i in range(32)])
        dense = ordered(
            [(i, {0} if i < 8 else set()) for i in range(32)]
        )
        sparse_row = render_access_map(sparse, 1, width=32).splitlines()[0]
        dense_row = render_access_map(dense, 1, width=32).splitlines()[0]
        # Same number of touched pages, very different spans.
        assert sparse_row.rstrip("|").rstrip().endswith("#")
        first, last = dense_row.index("#"), dense_row.rindex("#")
        assert last - first < 9
