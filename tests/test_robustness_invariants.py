"""Tests for the page-table / physmem / miss-accounting invariant checker."""

import pytest

from repro.machine.config import CacheConfig, MachineConfig
from repro.machine.memory_system import MemorySystem
from repro.osmodel.policies import PageColoringPolicy
from repro.osmodel.vm import VirtualMemory
from repro.robustness.invariants import InvariantViolation, check_invariants


def machine(num_cpus=2) -> MachineConfig:
    return MachineConfig(
        num_cpus=num_cpus,
        page_size=256,
        l1d=CacheConfig(512, 64, 2),
        l1i=CacheConfig(512, 64, 2),
        l2=CacheConfig(4096, 64, 1),  # 16 colors
    )


def build():
    config = machine()
    vm = VirtualMemory(config, PageColoringPolicy(config.num_colors))
    ms = MemorySystem(config)
    return config, vm, ms


class TestHealthyState:
    def test_fresh_vm_passes(self):
        _, vm, ms = build()
        report = check_invariants(vm, ms)
        assert report.ok
        assert report.checks >= 4

    def test_active_vm_passes(self):
        config, vm, ms = build()
        for vpage in range(24):
            vm.ensure_mapped(vpage)
            addr = vpage * config.page_size
            ms.access(0, 0.0, addr, vm.translate(addr), is_write=False)
        report = check_invariants(vm, ms)
        assert report.ok, report.violations

    def test_pressured_vm_passes(self):
        _, vm, ms = build()
        vm.physmem.occupy_fraction(0.5, seed=1)
        for vpage in range(16):
            vm.ensure_mapped(vpage)
        assert check_invariants(vm, ms).ok

    def test_without_memory_system(self):
        _, vm, _ = build()
        vm.ensure_mapped(0)
        report = check_invariants(vm)
        assert report.ok

    def test_raise_if_failed_is_noop_when_ok(self):
        _, vm, ms = build()
        check_invariants(vm, ms).raise_if_failed()


class TestCorruptionDetection:
    def test_catches_double_mapped_frame(self):
        """The checker is non-vacuous: a deliberate double mapping trips it."""
        _, vm, ms = build()
        vm.ensure_mapped(0)
        frame = vm.page_table.frame_of(0)
        # Corrupt the page table directly: map a second vpage to the same
        # frame without going through the allocator.
        vm.page_table._map[99] = frame
        report = check_invariants(vm, ms)
        assert not report.ok
        assert any("double-mapped" in v for v in report.violations)
        with pytest.raises(InvariantViolation):
            report.raise_if_failed()

    def test_catches_free_mapped_overlap(self):
        _, vm, ms = build()
        vm.ensure_mapped(0)
        frame = vm.page_table.frame_of(0)
        # Corrupt the free lists: push a mapped frame back as if free.
        vm.physmem._free[vm.physmem.color_of(frame)].append(frame)
        report = check_invariants(vm, ms)
        assert not report.ok
        assert any("overlap" in v for v in report.violations)

    def test_catches_wrong_color_free_list(self):
        _, vm, ms = build()
        physmem = vm.physmem
        frame = physmem._free[0].popleft()
        physmem._free[1].append(frame)  # frame of color 0 on list 1
        report = check_invariants(vm, ms)
        assert not report.ok
        assert any("on free list" in v for v in report.violations)

    def test_catches_duplicate_free_entry(self):
        _, vm, ms = build()
        physmem = vm.physmem
        physmem._free[0].append(physmem._free[0][0])
        report = check_invariants(vm, ms)
        assert not report.ok
        assert any("twice" in v for v in report.violations)

    def test_catches_conservation_break(self):
        _, vm, ms = build()
        vm.physmem._free[0].popleft()  # frame vanishes from every state
        report = check_invariants(vm, ms)
        assert not report.ok
        assert any("conservation" in v for v in report.violations)

    def test_catches_miss_accounting_mismatch(self):
        config, vm, ms = build()
        vm.ensure_mapped(0)
        ms.access(0, 0.0, 0, vm.translate(0), is_write=False)
        ms.frame_misses[vm.page_table.frame_of(0)] += 5  # tamper one counter
        report = check_invariants(vm, ms)
        assert not report.ok
        assert any("miss accounting" in v for v in report.violations)


class TestEngineIntegration:
    def test_check_invariants_option_runs_per_epoch(self):
        from repro.machine.config import sgi_base
        from repro.sim.engine import EngineOptions, run_benchmark
        from repro.sim.tracegen import SimProfile

        result = run_benchmark(
            "tomcatv",
            sgi_base(2).scaled(16),
            EngineOptions(
                policy="page_coloring",
                check_invariants=True,
                profile=SimProfile.fast(),
            ),
        )
        assert result.degradation.invariant_checks >= 2
