"""End-to-end checks of the paper's qualitative results.

These run the real benchmark stack (scaled 1/16) for the cases whose
direction the paper states unambiguously.  They are the slowest tests in
the suite (a few seconds each) but they pin down the headline behaviours
the benchmarks in ``benchmarks/`` quantify.
"""

import pytest

from repro.machine.config import sgi_4mb, sgi_base
from repro.machine.stats import MissKind
from repro.sim.engine import run_benchmark
from repro.sim.tracegen import SimProfile

FAST = SimProfile.fast()


def run(name, config, **kwargs):
    return run_benchmark(name, config, profile=FAST, **kwargs)


@pytest.fixture(scope="module")
def tomcatv_16():
    config = sgi_base(16).scaled(16)
    return {
        "pc": run("tomcatv", config, policy="page_coloring"),
        "bh": run("tomcatv", config, policy="bin_hopping"),
        "cdpc": run("tomcatv", config, policy="page_coloring", cdpc=True),
    }


class TestTomcatv(object):
    def test_cdpc_eliminates_conflicts_at_16_cpus(self, tomcatv_16):
        # Section 6.1: when the working set fits the aggregate cache, CDPC
        # eliminates nearly all conflict misses.
        pc = tomcatv_16["pc"].misses(MissKind.CONFLICT)
        cdpc = tomcatv_16["cdpc"].misses(MissKind.CONFLICT)
        assert cdpc < pc / 10

    def test_cdpc_beats_both_policies(self, tomcatv_16):
        assert tomcatv_16["cdpc"].wall_ns < tomcatv_16["pc"].wall_ns
        assert tomcatv_16["cdpc"].wall_ns < tomcatv_16["bh"].wall_ns

    def test_bin_hopping_beats_page_coloring(self, tomcatv_16):
        # Figure 9: for tomcatv, bin hopping outperforms page coloring.
        assert tomcatv_16["bh"].wall_ns < tomcatv_16["pc"].wall_ns

    def test_no_gain_at_one_cpu(self):
        config = sgi_base(1).scaled(16)
        pc = run("tomcatv", config, policy="page_coloring")
        cdpc = run("tomcatv", config, policy="page_coloring", cdpc=True)
        assert cdpc.wall_ns == pytest.approx(pc.wall_ns, rel=0.05)


class TestApplu:
    def test_no_benefit_with_1mb_cache(self):
        # Figure 6: applu's 31MB data set swamps the 1MB caches.
        config = sgi_base(8).scaled(16)
        pc = run("applu", config, policy="page_coloring")
        cdpc = run("applu", config, policy="page_coloring", cdpc=True)
        assert cdpc.wall_ns == pytest.approx(pc.wall_ns, rel=0.15)

    def test_benefit_appears_with_4mb_cache(self):
        # Figure 7: benefits appear with the larger 4MB configuration.
        config = sgi_4mb(8).scaled(16)
        pc = run("applu", config, policy="page_coloring")
        cdpc = run("applu", config, policy="page_coloring", cdpc=True)
        assert cdpc.wall_ns < pc.wall_ns * 0.9

    def test_load_imbalance_at_16_cpus(self):
        # Section 4.1: 33 iterations leave 16 processors imbalanced.
        config = sgi_base(16).scaled(16)
        result = run("applu", config, policy="page_coloring")
        imbalance = result.overhead_breakdown_ns()["load_imbalance"]
        assert imbalance > 0.1 * result.wall_ns


class TestOutliers:
    def test_apsi_insensitive_to_cdpc(self):
        config = sgi_base(8).scaled(16)
        pc = run("apsi", config, policy="page_coloring")
        cdpc = run("apsi", config, policy="page_coloring", cdpc=True)
        assert cdpc.wall_ns == pytest.approx(pc.wall_ns, rel=0.1)

    def test_fpppp_flat_across_policies(self):
        # Table 2: fpppp's time is identical across policies.
        config = sgi_base(8).scaled(16)
        times = [
            run("fpppp", config, policy=policy).wall_ns
            for policy in ("page_coloring", "bin_hopping")
        ]
        assert times[0] == pytest.approx(times[1], rel=0.2)

    def test_suppressed_workloads_show_no_speedup(self):
        # apsi and fpppp gain little from more processors (Figure 2).
        one = run("fpppp", sgi_base(1).scaled(16), policy="page_coloring")
        eight = run("fpppp", sgi_base(8).scaled(16), policy="page_coloring")
        assert eight.wall_ns > one.wall_ns * 0.7  # no meaningful speedup


class TestPrefetching:
    def test_prefetch_helps_tomcatv_with_cdpc(self):
        # Figure 8: prefetching hides the misses CDPC does not eliminate.
        config = sgi_base(4).scaled(16)
        cdpc = run("tomcatv", config, policy="page_coloring", cdpc=True)
        both = run(
            "tomcatv", config, policy="page_coloring", cdpc=True, prefetch=True
        )
        assert both.wall_ns < cdpc.wall_ns
        assert both.stats.cpus[0].prefetches_issued > 0

    def test_prefetch_ineffective_for_applu(self):
        # Section 6.2: tiling inhibits pipelining and large strides drop
        # prefetches on TLB misses.
        config = sgi_base(8).scaled(16)
        base = run("applu", config, policy="page_coloring")
        prefetched = run("applu", config, policy="page_coloring", prefetch=True)
        stats = prefetched.stats.cpus[0]
        assert prefetched.wall_ns > base.wall_ns * 0.9
