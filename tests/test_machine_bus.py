"""Tests for the split-transaction bus contention model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.bus import BusTransactionKind, SplitTransactionBus


class TestBus:
    def test_idle_bus_grants_immediately(self):
        bus = SplitTransactionBus(1.2)
        assert bus.request(1000.0, 128, BusTransactionKind.DATA) == 1000.0

    def test_occupancy_includes_command_overhead(self):
        bus = SplitTransactionBus(1.0)  # 1 byte/ns
        assert bus.occupancy_ns(128) == pytest.approx(128 + bus.COMMAND_BYTES)

    def test_back_to_back_requests_queue(self):
        bus = SplitTransactionBus(1.0)
        first = bus.request(0.0, 112, BusTransactionKind.DATA)  # occupies 128ns
        second = bus.request(0.0, 112, BusTransactionKind.DATA)
        assert first == 0.0
        assert second == pytest.approx(128.0)

    def test_backlog_drains_with_elapsed_time(self):
        bus = SplitTransactionBus(1.0)
        bus.request(0.0, 112, BusTransactionKind.DATA)  # backlog 128ns
        # 60ns later, 68ns of backlog remain.
        assert bus.request(60.0, 112, BusTransactionKind.DATA) == pytest.approx(128.0)
        # Far in the future the backlog is gone.
        assert bus.request(10_000.0, 112, BusTransactionKind.DATA) == pytest.approx(
            10_000.0
        )

    def test_past_timestamp_not_charged_for_skew(self):
        """A requester whose clock lags recent traffic pays only the
        backlog, not the skew (the out-of-order simulation guarantee)."""
        bus = SplitTransactionBus(1.0)
        bus.request(100_000.0, 112, BusTransactionKind.DATA)
        grant = bus.request(50_000.0, 112, BusTransactionKind.DATA)
        assert grant - 50_000.0 == pytest.approx(128.0)

    def test_busy_accounting_by_kind(self):
        bus = SplitTransactionBus(1.0)
        bus.request(0.0, 112, BusTransactionKind.DATA)
        bus.request(0.0, 112, BusTransactionKind.WRITEBACK)
        bus.request(0.0, 0, BusTransactionKind.UPGRADE)
        assert bus.busy_ns[BusTransactionKind.DATA] == pytest.approx(128.0)
        assert bus.busy_ns[BusTransactionKind.WRITEBACK] == pytest.approx(128.0)
        assert bus.busy_ns[BusTransactionKind.UPGRADE] == pytest.approx(16.0)
        assert bus.transactions[BusTransactionKind.DATA] == 1

    def test_utilization(self):
        bus = SplitTransactionBus(1.0)
        bus.request(0.0, 112, BusTransactionKind.DATA)
        assert bus.utilization(256.0) == pytest.approx(0.5)
        assert bus.utilization(64.0) == 1.0  # clamped
        assert bus.utilization(0.0) == 0.0

    def test_utilization_breakdown_sums_to_utilization(self):
        bus = SplitTransactionBus(1.2)
        for _ in range(5):
            bus.request(0.0, 128, BusTransactionKind.DATA)
            bus.request(0.0, 128, BusTransactionKind.WRITEBACK)
        elapsed = 10_000.0
        breakdown = bus.utilization_breakdown(elapsed)
        assert sum(breakdown.values()) == pytest.approx(bus.utilization(elapsed))

    def test_queue_delay_reflects_backlog(self):
        bus = SplitTransactionBus(1.0)
        assert bus.queue_delay(0.0) == 0.0
        bus.request(0.0, 112, BusTransactionKind.DATA)
        assert bus.queue_delay(0.0) == pytest.approx(128.0)
        assert bus.queue_delay(200.0) == 0.0

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            SplitTransactionBus(0.0)

    def test_higher_bandwidth_shorter_occupancy(self):
        slow = SplitTransactionBus(1.2)
        fast = SplitTransactionBus(2.4)
        assert fast.occupancy_ns(128) == pytest.approx(slow.occupancy_ns(128) / 2)

    @given(
        st.lists(
            st.tuples(st.floats(0, 1e6), st.integers(0, 256)),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_grant_never_precedes_request(self, requests):
        bus = SplitTransactionBus(1.2)
        for time_ns, payload in requests:
            grant = bus.request(time_ns, payload, BusTransactionKind.DATA)
            assert grant >= time_ns

    @given(st.lists(st.floats(0, 1e6), min_size=2, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_total_busy_equals_sum_of_occupancies(self, times):
        bus = SplitTransactionBus(1.2)
        for time_ns in times:
            bus.request(time_ns, 128, BusTransactionKind.DATA)
        expected = len(times) * bus.occupancy_ns(128)
        assert bus.total_busy_ns == pytest.approx(expected)
