"""Tests for the seedable load generator: determinism, chaos, SLO math."""

import asyncio

import pytest

from repro.service import (
    ColoringService,
    LoadSpec,
    Status,
    build_requests,
    run_loadgen,
)
from repro.service.loadgen import LOADGEN_SCHEMA, _chaos_for
from repro.service.protocol import ServiceResponse


class TestBuildRequests:
    def test_same_seed_same_mix(self):
        spec = LoadSpec(requests=50, seed=7, fail_every=10, flood_requests=5)
        assert build_requests(spec) == build_requests(spec)

    def test_different_seed_different_mix(self):
        one = build_requests(LoadSpec(requests=50, seed=1))
        two = build_requests(LoadSpec(requests=50, seed=2))
        assert one != two

    def test_mix_shape(self):
        spec = LoadSpec(requests=40, tenants=4, flood_requests=10, seed=0)
        requests = build_requests(spec)
        assert len(requests) == 50
        ids = {request.request_id for request in requests}
        assert len(ids) == 50  # unique; this is what zero-loss counts on
        tenants = {request.tenant for request in requests}
        assert tenants == {"tenant0", "tenant1", "tenant2", "tenant3", "flood"}
        assert sum(request.tenant == "flood" for request in requests) == 10

    def test_hot_and_cold_keys_follow_cached_fraction(self):
        all_hot = build_requests(LoadSpec(requests=30, cached_fraction=1.0, hot_keys=2))
        keys = {dict(request.synthetic)["key"] for request in all_hot}
        assert keys <= {"hot-0", "hot-1"}
        all_cold = build_requests(LoadSpec(requests=30, cached_fraction=0.0))
        keys = {dict(request.synthetic)["key"] for request in all_cold}
        assert len(keys) == 30 and all(key.startswith("cold-") for key in keys)

    def test_chaos_cadence_and_priority(self):
        spec = LoadSpec(requests=12, kill_every=6, hang_every=4, fail_every=3)
        # Ordinal 12 collides on all three: kill wins, then hang, then fail.
        assert _chaos_for(spec, 11) == "kill"
        assert _chaos_for(spec, 7) == "hang"
        assert _chaos_for(spec, 2) == "fail"
        assert _chaos_for(spec, 0) is None

    def test_chaos_keys_never_alias_clean_traffic(self):
        spec = LoadSpec(requests=20, fail_every=5)
        requests = build_requests(spec)
        chaotic = [r for r in requests if "chaos" in dict(r.synthetic)]
        assert len(chaotic) == 4
        for request in chaotic:
            assert dict(request.synthetic)["key"].startswith("chaos-fail-")

    def test_scratch_arms_one_shot_kill_and_hang_only(self, tmp_path):
        spec = LoadSpec(requests=20, kill_every=10, fail_every=7)
        requests = build_requests(spec, scratch=str(tmp_path))
        by_chaos = {}
        for request in requests:
            knobs = dict(request.synthetic)
            if "chaos" in knobs:
                by_chaos.setdefault(knobs["chaos"], []).append(knobs)
        assert all("scratch" in knobs and "token" in knobs for knobs in by_chaos["kill"])
        assert all("scratch" not in knobs for knobs in by_chaos["fail"])

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            LoadSpec(requests=0)
        with pytest.raises(ValueError):
            LoadSpec(cached_fraction=1.5)
        with pytest.raises(ValueError):
            LoadSpec(concurrency=0)
        with pytest.raises(ValueError):
            LoadSpec(flood_requests=-1)


class TestRunLoadgen:
    def test_clean_run_reports_zero_loss_and_cache_hits(self):
        async def main():
            async with ColoringService(
                engine="synthetic",
                batch_window_s=0.001,
                max_batch=16,
                queue_limit=10_000,
                quota_rate=1e9,
                quota_burst=1e9,
            ) as svc:
                spec = LoadSpec(requests=80, concurrency=16, cached_fraction=0.8, seed=3)
                return await run_loadgen(svc.submit, spec)

        report = asyncio.run(main())
        payload = report.to_dict()
        assert payload["schema"] == LOADGEN_SCHEMA
        assert report.ok
        assert payload["lost"] == []
        assert payload["responded"] == payload["sent"] == 80
        assert payload["by_status"] == {"ok": 80}
        assert payload["cached"] + payload["coalesced"] > 0
        assert payload["latency_ms"]["p99"] >= payload["latency_ms"]["p50"] > 0

    def test_shed_rate_excludes_the_flooding_tenant(self):
        # Every flood request rejected, every normal one answered: the
        # well-behaved shed rate must still be zero.
        async def submit(request):
            if request.tenant == "flood":
                return ServiceResponse(
                    status=Status.REJECTED,
                    request_id=request.request_id,
                    reason="quota",
                )
            return ServiceResponse(status=Status.OK, request_id=request.request_id)

        spec = LoadSpec(requests=20, flood_requests=10, max_shed_rate=0.0)
        report = asyncio.run(run_loadgen(submit, spec))
        payload = report.to_dict()
        assert report.ok
        assert payload["shed_rate"] == 0.0
        assert payload["flood"] == {"sent": 10, "rejected": 10}
        assert payload["by_reason"]["quota"] == 10

    def test_slo_violations_fail_the_report(self):
        async def submit(request):
            return ServiceResponse(
                status=Status.REJECTED,
                request_id=request.request_id,
                reason="overload",
            )

        spec = LoadSpec(requests=10, max_shed_rate=0.1)
        report = asyncio.run(run_loadgen(submit, spec))
        assert not report.ok
        violations = report.to_dict()["slo"]["violations"]
        assert any("shed rate" in violation for violation in violations)
