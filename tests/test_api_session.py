"""Tests for the repro.api Session facade and keyword deprecation shims."""

from __future__ import annotations

import pytest

import repro
from repro import Session
from repro.api import canonicalize_kwargs, run_benchmark, run_program
from repro.machine.config import sgi_base
from repro.sim import engine as _engine
from repro.sim.engine import EngineOptions
from repro.sim.tracegen import SimProfile
from tests.conftest import make_two_array_program


@pytest.fixture(scope="module")
def config():
    """Scaled 2-CPU SGI machine — cheap enough for named-workload runs."""
    return sgi_base(2).scaled(16)


class TestSessionConstruction:
    def test_importable_from_top_level(self):
        assert repro.Session is Session
        assert "Session" in repro.__all__

    def test_requires_exactly_one_target(self, config):
        with pytest.raises(TypeError, match="exactly one"):
            Session()
        with pytest.raises(TypeError, match="exactly one"):
            Session(
                "tomcatv", program=make_two_array_program(config.page_size)
            )

    def test_unknown_option_rejected(self):
        with pytest.raises(TypeError, match="no_such_option"):
            Session("tomcatv", no_such_option=1)

    def test_default_config_scaling(self):
        session = Session("tomcatv", cpus=4, scale=8)
        assert session.config.num_cpus == 4

    def test_with_options_returns_new_session(self, config):
        base = Session("tomcatv", config=config)
        derived = base.with_options(aligned=False)
        assert derived is not base
        assert derived.options.aligned is False
        assert base.options.aligned is True

    def test_obs_shorthand(self, config):
        session = Session("tomcatv", config=config, obs=True)
        assert session.options.obs is not None
        assert session.options.obs.metrics
        off = Session("tomcatv", config=config, obs=False)
        assert off.options.obs is None


class TestDeprecationShims:
    def test_max_workers_maps_to_workers(self):
        with pytest.warns(DeprecationWarning, match="max_workers"):
            out = canonicalize_kwargs({"max_workers": 3})
        assert out == {"workers": 3}

    def test_fast_maps_to_profile(self):
        with pytest.warns(DeprecationWarning, match="fast"):
            out = canonicalize_kwargs({"fast": True})
        assert out == {"profile": SimProfile.fast()}
        with pytest.warns(DeprecationWarning):
            assert canonicalize_kwargs({"fast": False}) == {
                "profile": SimProfile()
            }

    def test_unaligned_maps_to_negated_aligned(self):
        with pytest.warns(DeprecationWarning, match="unaligned"):
            out = canonicalize_kwargs({"unaligned": True})
        assert out == {"aligned": False}

    def test_collision_with_canonical_name_rejected(self):
        with pytest.raises(TypeError, match="both"):
            canonicalize_kwargs({"fast": True, "profile": SimProfile()})

    def test_canonical_names_pass_through_silently(self, recwarn):
        out = canonicalize_kwargs({"workers": 2, "aligned": True})
        assert out == {"workers": 2, "aligned": True}
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]

    def test_session_accepts_legacy_kwargs(self, config):
        with pytest.warns(DeprecationWarning):
            session = Session("tomcatv", config=config, fast=True)
        assert session.options.profile == SimProfile.fast()


class TestDelegates:
    def test_run_benchmark_matches_engine(self, config):
        legacy = _engine.run_benchmark("tomcatv", config, profile=SimProfile.fast())
        facade = run_benchmark("tomcatv", config, profile=SimProfile.fast())
        assert facade.to_dict() == legacy.to_dict()

    def test_run_program_matches_engine(self, config):
        program = make_two_array_program(config.page_size)
        legacy = _engine.run_program(
            program, config, EngineOptions(profile=SimProfile.fast())
        )
        facade = run_program(program, config, profile=SimProfile.fast())
        assert facade.to_dict() == legacy.to_dict()

    def test_session_run_matches_delegate(self, config):
        session = Session("tomcatv", config=config, profile=SimProfile.fast())
        assert session.run().to_dict() == run_benchmark(
            "tomcatv", config, profile=SimProfile.fast()
        ).to_dict()

    def test_session_run_override_does_not_mutate(self, config):
        session = Session("tomcatv", config=config)
        session.run(profile=SimProfile.fast())
        assert session.options.profile == SimProfile()


class TestSessionSweep:
    def test_sweep_returns_policy_results(self, config):
        session = Session("tomcatv", config=config, profile=SimProfile.fast())
        results = session.sweep(
            policies=["page_coloring", "bin_hopping"], workers=1
        )
        assert sorted(results) == ["bin_hopping", "page_coloring"]
        assert session.last_campaign is not None
        assert session.last_campaign.report.completed == 2

    def test_sweep_obs_report_requires_sweep(self, config):
        session = Session("tomcatv", config=config)
        assert session.sweep_obs_report() is None


class TestSessionScenarioSweep:
    @pytest.fixture(scope="class")
    def tiny_spec(self):
        from repro.scenarios import CapacityEvent, ScenarioSpec

        return ScenarioSpec(
            name="tiny",
            workload="swim",
            seed=3,
            capacity_events=(CapacityEvent(beat=1, delta_frames=-0.2),),
        )

    @pytest.fixture(scope="class")
    def small_session(self):
        from repro.machine.config import sgi_base

        return Session(
            "fpppp",
            config=sgi_base(2).scaled(4),
            profile=SimProfile.fast(),
        )

    def test_scenario_detection(self, tiny_spec):
        from repro.api import _is_scenario

        assert _is_scenario("smoke")
        assert _is_scenario(tiny_spec)
        assert _is_scenario(tiny_spec.to_dict())
        assert _is_scenario({"name": "x", "capacity_events": []})
        # Policy shapes must NOT be mistaken for scenarios.
        assert not _is_scenario(None)
        assert not _is_scenario(["page_coloring", "cdpc"])
        assert not _is_scenario({"cdpc": {"cdpc": True}})

    def test_sweep_runs_scenario_modes(self, small_session, tiny_spec):
        results = small_session.sweep(tiny_spec, workers=1)
        assert sorted(results) == [
            "bin-hopping", "cdpc-adaptive", "dynamic-recolor"
        ]
        assert small_session.last_scenario is not None
        assert small_session.last_campaign is not None
        assert small_session.last_scenario.results is results or (
            small_session.last_scenario.results == results
        )

    def test_session_workload_overrides_spec(self, small_session, tiny_spec):
        # The fixture session already ran the sweep above in class scope;
        # the report must carry the session's workload, not the spec's.
        if small_session.last_scenario is None:
            small_session.sweep(tiny_spec, workers=1)
        assert small_session.last_scenario.spec.workload == "fpppp"

    def test_scenario_report_renders_figure(self, small_session, tiny_spec):
        if small_session.last_scenario is None:
            small_session.sweep(tiny_spec, workers=1)
        figure = small_session.last_scenario.figure(width=16)
        assert "hint honor rate" in figure

    def test_legacy_kwargs_still_shim(self, small_session, tiny_spec):
        with pytest.warns(DeprecationWarning, match="max_workers"):
            results = small_session.sweep(tiny_spec, max_workers=1)
        assert len(results) == 3

    def test_unknown_kwarg_rejected(self, small_session, tiny_spec):
        with pytest.raises(TypeError, match="unknown sweep option"):
            small_session.sweep(tiny_spec, bogus=1)

    def test_unknown_preset_name_raises(self, small_session):
        with pytest.raises(KeyError, match="unknown scenario preset"):
            small_session.sweep("not-a-preset")
