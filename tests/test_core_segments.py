"""Tests for Step 1: uniform access segments and sets."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import Communication
from repro.core.access_summary import (
    AccessSummary,
    ArrayPartitioning,
    CommunicationPattern,
)
from repro.core.segments import (
    UniformAccessSegment,
    compute_segments,
    group_into_sets,
)

PAGE = 256


def summary_for(
    num_pages=16, unit_pages=1, start_page=0, comm=None, boundary_pages=0
) -> AccessSummary:
    part = ArrayPartitioning(
        "a", start_page * PAGE, num_pages * PAGE, unit_pages * PAGE
    )
    summary = AccessSummary(partitionings=[part])
    if comm is not None:
        summary.communications.append(
            CommunicationPattern(part, comm, boundary_pages * PAGE)
        )
    return summary


class TestComputeSegments:
    def test_segments_split_at_partition_boundaries(self):
        segments = compute_segments(summary_for(16), PAGE, 4)
        assert [(s.start_page, s.end_page, set(s.cpus)) for s in segments] == [
            (0, 4, {0}),
            (4, 8, {1}),
            (8, 12, {2}),
            (12, 16, {3}),
        ]

    def test_single_cpu_single_segment(self):
        segments = compute_segments(summary_for(16), PAGE, 1)
        assert len(segments) == 1
        assert segments[0].num_pages == 16

    def test_straddling_page_gets_both_cpus(self):
        # 3 pages, 2 CPUs: the middle page belongs to both partitions.
        summary = summary_for(num_pages=3, unit_pages=1)
        # unit = 1 page, 3 units over 2 cpus -> cpu0 gets 2, cpu1 gets 1;
        # no straddle.  Use sub-page units instead: 6 units of half a page.
        part = ArrayPartitioning("a", 0, 3 * PAGE, PAGE // 2)
        summary = AccessSummary(partitionings=[part])
        segments = compute_segments(summary, PAGE, 2)
        cpu_sets = [set(s.cpus) for s in segments]
        assert cpu_sets == [{0}, {0, 1}, {1}]

    def test_shift_communication_extends_processor_sets(self):
        summary = summary_for(16, comm=Communication.SHIFT, boundary_pages=1)
        segments = compute_segments(summary, PAGE, 4)
        by_page = {}
        for seg in segments:
            for page in seg.pages:
                by_page[page] = set(seg.cpus)
        # First page of CPU 1's partition is read by CPU 0...
        assert by_page[4] == {0, 1}
        # ...and the last page of CPU 0's partition is read by CPU 1.
        assert by_page[3] == {0, 1}
        # Interior pages stay private.
        assert by_page[5] == {1}
        # The array's outer edges have no neighbour under SHIFT.
        assert by_page[0] == {0}
        assert by_page[15] == {3}

    def test_rotate_communication_wraps(self):
        summary = summary_for(16, comm=Communication.ROTATE, boundary_pages=1)
        segments = compute_segments(summary, PAGE, 4)
        by_page = {}
        for seg in segments:
            for page in seg.pages:
                by_page[page] = set(seg.cpus)
        assert by_page[0] == {0, 3}  # CPU 3 wraps around to read page 0
        assert by_page[15] == {0, 3}

    def test_segments_respect_array_base(self):
        segments = compute_segments(summary_for(8, start_page=100), PAGE, 2)
        assert segments[0].start_page == 100
        assert segments[-1].end_page == 108

    def test_multiple_partitionings_union_cpus(self):
        # Same array partitioned forward in one loop and reverse in another:
        # pages are accessed by both end processors.
        from repro.common import Direction

        forward = ArrayPartitioning("a", 0, 8 * PAGE, PAGE)
        reverse = ArrayPartitioning(
            "a", 0, 8 * PAGE, PAGE, direction=Direction.REVERSE
        )
        summary = AccessSummary(partitionings=[forward, reverse])
        segments = compute_segments(summary, PAGE, 2)
        by_page = {p: set(s.cpus) for s in segments for p in s.pages}
        assert by_page[0] == {0, 1}

    def test_validation(self):
        with pytest.raises(ValueError):
            compute_segments(AccessSummary(), 0, 2)
        with pytest.raises(ValueError):
            UniformAccessSegment("a", 4, 4, frozenset({0}))

    @given(st.integers(1, 64), st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_segments_tile_array_exactly(self, num_pages, num_cpus):
        segments = compute_segments(summary_for(num_pages), PAGE, num_cpus)
        covered = sorted(page for seg in segments for page in seg.pages)
        assert covered == list(range(num_pages))


class TestGroupIntoSets:
    def test_groups_by_processor_set_across_arrays(self):
        a = ArrayPartitioning("a", 0, 8 * PAGE, PAGE)
        b = ArrayPartitioning("b", 8 * PAGE, 8 * PAGE, PAGE)
        summary = AccessSummary(partitionings=[a, b])
        sets = group_into_sets(compute_segments(summary, PAGE, 2))
        assert len(sets) == 2
        for access_set in sets:
            assert sorted(seg.array for seg in access_set.segments) == ["a", "b"]
            assert access_set.num_pages == 8

    def test_empty_processor_sets_dropped(self):
        segments = [
            UniformAccessSegment("a", 0, 4, frozenset()),
            UniformAccessSegment("a", 4, 8, frozenset({1})),
        ]
        sets = group_into_sets(segments)
        assert len(sets) == 1
        assert sets[0].cpus == frozenset({1})

    def test_deterministic_order(self):
        segments = [
            UniformAccessSegment("a", 0, 4, frozenset({3})),
            UniformAccessSegment("a", 4, 8, frozenset({1})),
            UniformAccessSegment("a", 8, 12, frozenset({1, 3})),
        ]
        sets = group_into_sets(segments)
        assert [tuple(sorted(s.cpus)) for s in sets] == [(1,), (1, 3), (3,)]

    def test_set_arrays_listing(self):
        segments = [
            UniformAccessSegment("b", 0, 4, frozenset({0})),
            UniformAccessSegment("a", 4, 8, frozenset({0})),
        ]
        sets = group_into_sets(segments)
        assert sets[0].arrays() == ["b", "a"]
