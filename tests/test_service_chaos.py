"""Acceptance chaos suite: the ISSUE's robustness claims, demonstrated.

One scripted outage at a time:

* worker ``SIGKILL`` mid-batch *plus* a flooding tenant, with zero
  accepted-request loss and the flood shed by quota, not by collapse;
* a persistent fault tripping the circuit breaker, degraded fallbacks
  while it is open, and recovery through the half-open probe;
* a drain that leaves the durable :class:`ResultStore` crash-consistent
  (a fresh store serves every answer the service gave);
* cached repeats answered without spawning any harness work, proven by
  the service's own observability counters.

These are integration tests over the real machinery — real pool
workers, a real ``SIGKILL``, the real store — kept small enough to run
in seconds.
"""

import asyncio

from repro.harness.store import ResultStore
from repro.service import (
    ColoringRequest,
    ColoringService,
    LoadSpec,
    RequestKind,
    Status,
    run_loadgen,
)


def synthetic(key, tenant="default", **knobs):
    knobs = {"key": key, **knobs}
    return ColoringRequest(
        kind=RequestKind.SYNTHETIC,
        workload="w",
        tenant=tenant,
        synthetic=tuple(sorted(knobs.items())),
    )


class TestKillAndFlood:
    def test_sigkill_plus_flood_loses_nothing(self, tmp_path):
        """A worker SIGKILL mid-campaign and a flooding tenant at once.

        Every accepted request must still get exactly one response; the
        flood is shed by per-tenant quota while well-behaved tenants
        keep their SLO.
        """
        scratch = str(tmp_path / "chaos")
        spec = LoadSpec(
            requests=40,
            tenants=4,
            concurrency=8,
            cached_fraction=0.6,
            kill_every=20,  # two real SIGKILLs
            flood_requests=30,
            seed=11,
            max_shed_rate=0.0,
        )

        async def main():
            async with ColoringService(
                engine="synthetic",
                batch_window_s=0.002,
                max_batch=8,
                queue_limit=10_000,
                # Flood tenant sends 30 at burst 12: most must bounce.
                quota_rate=5.0,
                quota_burst=12.0,
                task_timeout_s=5.0,  # forces pool workers (survivable kill)
            ) as svc:
                report = await run_loadgen(svc.submit, spec, scratch=scratch)
                return report, svc.metrics_snapshot()["counters"]

        report, counters = asyncio.run(main())
        payload = report.to_dict()
        assert payload["lost"] == []  # zero accepted-request loss
        assert payload["responded"] == payload["sent"] == 70
        assert report.ok, payload["slo"]["violations"]
        # The SIGKILLed tasks were retried to success, not dropped.
        assert payload["by_status"].get("ok", 0) == payload["answered"]
        assert payload["shed_rate"] == 0.0
        assert payload["flood"]["rejected"] >= spec.flood_requests - 15
        assert counters["service.rejected.quota"] == payload["flood"]["rejected"]
        assert counters.get("service.retries", 0) >= 2

    def test_flooding_tenant_cannot_starve_neighbours(self):
        async def main():
            async with ColoringService(
                engine="synthetic",
                batch_window_s=0.001,
                quota_rate=1.0,
                quota_burst=2.0,
            ) as svc:
                flood = [
                    await svc.submit(synthetic(f"f{i}", tenant="flood"))
                    for i in range(5)
                ]
                good = await svc.submit(synthetic("good", tenant="wellbehaved"))
                return flood, good

        flood, good = asyncio.run(main())
        assert sum(r.status == Status.REJECTED for r in flood) == 3
        assert all(r.reason == "quota" for r in flood if r.status == Status.REJECTED)
        assert good.status == Status.OK


class TestBreakerLifecycle:
    def test_trip_degrade_probe_recover_under_load(self):
        """Persistent faults trip the breaker; traffic degrades instead
        of failing; after recovery_s one probe closes it again."""
        clock_offset = {"value": 0.0}
        import time as _time

        def clock():
            return _time.monotonic() + clock_offset["value"]

        async def main():
            async with ColoringService(
                engine="synthetic",
                batch_window_s=0.001,
                breaker_threshold=2,
                breaker_recovery_s=30.0,
                clock=clock,
            ) as svc:
                # Persistent (no scratch) failures: retried, then counted.
                for key in ("boom1", "boom2"):
                    response = await svc.submit(synthetic(key, chaos="fail"))
                    assert response.status == Status.DEGRADED
                trips = svc.metrics_snapshot()["gauges"]["service.breaker.trips"]
                assert svc.health()["breakers"]["synthetic:w"] == "open"
                # While open: served degraded, never an exception or loss.
                shielded = [await svc.submit(synthetic(f"s{i}")) for i in range(5)]
                clock_offset["value"] += 30.0
                probe = await svc.submit(synthetic("probe"))
                closed = svc.health()["breakers"]["synthetic:w"]
                fresh = await svc.submit(synthetic("fresh"))
                return trips, shielded, probe, closed, fresh

        trips, shielded, probe, closed, fresh = asyncio.run(main())
        assert trips == 1
        assert all(r.status == Status.DEGRADED for r in shielded)
        assert all(r.reason == "circuit_open" for r in shielded)
        assert all(r.result is not None for r in shielded)  # canned answer
        assert probe.status == Status.OK
        assert closed == "closed"
        assert fresh.status == Status.OK and not fresh.cached


class TestDrainCrashConsistency:
    def test_fresh_store_serves_everything_the_service_answered(self, tmp_path):
        """After a drain, a brand-new ResultStore on the same directory
        must load every fingerprint the service answered — no torn or
        half-written entries."""
        store_dir = str(tmp_path / "plans")

        async def main():
            async with ColoringService(
                engine="synthetic", batch_window_s=0.001, store=store_dir
            ) as svc:
                responses = [
                    await svc.submit(synthetic(f"k{i}")) for i in range(6)
                ]
                return responses

        responses = asyncio.run(main())
        assert all(r.status == Status.OK for r in responses)
        store = ResultStore(store_dir)
        for response in responses:
            assert response.fingerprint in store
            assert store.get(response.fingerprint) == response.result
        # The journal itself replays cleanly too.
        assert len(store.fingerprints()) == 6

    def test_restarted_service_answers_from_the_store_without_work(self, tmp_path):
        store_dir = str(tmp_path / "plans")
        request = synthetic("durable")

        async def life(n):
            async with ColoringService(
                engine="synthetic", batch_window_s=0.001, store=store_dir
            ) as svc:
                response = await svc.submit(request)
                return response, svc.metrics_snapshot()["counters"]

        first, first_counters = asyncio.run(life(1))
        second, second_counters = asyncio.run(life(2))
        assert first.status == Status.OK and not first.cached
        assert first_counters["service.batches"] == 1
        assert second.status == Status.OK and second.cached
        assert second.result == first.result
        assert second_counters.get("service.batches", 0) == 0
        # The hit was promoted from the durable tier into memory.
        assert second_counters["service.cache.hits"] == 1


class TestCachedRepeatsDoNoWork:
    def test_obs_counters_prove_the_cache_path(self):
        """A hot-key-heavy run must answer most requests without any
        harness work: batches and executed tasks stay far below the
        request count, and the cache counters account for the rest."""
        spec = LoadSpec(
            requests=60,
            concurrency=1,  # serialize: repeats hit the cache, not coalescing
            cached_fraction=1.0,
            hot_keys=4,
            seed=5,
        )

        async def main():
            async with ColoringService(
                engine="synthetic",
                batch_window_s=0.001,
                queue_limit=10_000,
                quota_rate=1e9,
                quota_burst=1e9,
            ) as svc:
                report = await run_loadgen(svc.submit, spec)
                return report, svc.metrics_snapshot()["counters"]

        report, counters = asyncio.run(main())
        payload = report.to_dict()
        assert payload["lost"] == [] and payload["by_status"] == {"ok": 60}
        # Only the 4 distinct hot keys ever reached the harness.
        assert counters["service.batches"] == 4
        assert counters["service.cache.hits"] == 56
        assert payload["cached"] == 56
        assert counters["service.responses.ok"] == 60
