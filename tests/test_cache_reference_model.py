"""Differential test: the set-associative cache against a naive reference.

The reference model keeps, for each set, an explicit list of (line, last
use time) and evicts the oldest — an obviously-correct LRU.  Hypothesis
drives both with the same reference stream and requires identical hit/miss
sequences and identical final contents.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.cache import SetAssociativeCache
from repro.machine.config import CacheConfig


class ReferenceCache:
    """Brute-force LRU set-associative cache."""

    def __init__(self, size, line, assoc):
        self.line = line
        self.assoc = assoc
        self.num_sets = size // (line * assoc)
        self.sets = [dict() for _ in range(self.num_sets)]  # line -> last use
        self.clock = 0

    def access(self, line_addr):
        self.clock += 1
        index = (line_addr // self.line) % self.num_sets
        entries = self.sets[index]
        hit = line_addr in entries
        entries[line_addr] = self.clock
        if len(entries) > self.assoc:
            oldest = min(entries, key=entries.get)
            del entries[oldest]
        return hit

    def contents(self):
        return {line for entries in self.sets for line in entries}


@given(
    st.integers(0, 2).map(lambda i: [1, 2, 4][i]),  # associativity
    st.lists(st.integers(0, 63), min_size=1, max_size=400),
)
@settings(max_examples=80, deadline=None)
def test_cache_matches_reference_model(assoc, refs):
    size, line = 1024, 64
    cache = SetAssociativeCache(CacheConfig(size, line, assoc))
    reference = ReferenceCache(size, line, assoc)
    for ref in refs:
        line_addr = ref * line
        hit = cache.lookup(line_addr)
        if not hit:
            cache.insert(line_addr)
        assert hit == reference.access(line_addr)
    assert set(cache.resident_lines()) == reference.contents()


@given(st.lists(st.tuples(st.integers(0, 31), st.booleans()),
                min_size=1, max_size=300))
@settings(max_examples=60, deadline=None)
def test_invalidations_match_reference(ops):
    """Interleave accesses and invalidations; final contents must agree."""
    size, line, assoc = 512, 64, 2
    cache = SetAssociativeCache(CacheConfig(size, line, assoc))
    reference = ReferenceCache(size, line, assoc)
    for ref, invalidate in ops:
        line_addr = ref * line
        if invalidate:
            cache.invalidate(line_addr)
            index = (line_addr // line) % reference.num_sets
            reference.sets[index].pop(line_addr, None)
        else:
            if not cache.lookup(line_addr):
                cache.insert(line_addr)
            reference.access(line_addr)
    assert set(cache.resident_lines()) == reference.contents()
