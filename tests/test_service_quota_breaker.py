"""Tests for the admission token buckets and the circuit breakers."""

import pytest

from repro.service.breaker import BreakerState, CircuitBreaker, WorkloadBreakers
from repro.service.quota import TenantQuotas, TokenBucket


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_deny_with_retry_hint(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        assert bucket.take().allowed
        assert bucket.take().allowed
        denied = bucket.take()
        assert not denied.allowed
        assert denied.retry_after_s == pytest.approx(0.1)

    def test_continuous_refill_up_to_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        bucket.take()
        bucket.take()
        clock.advance(0.05)  # half a token
        assert not bucket.take().allowed
        clock.advance(0.05)  # a full token now
        assert bucket.take().allowed
        clock.advance(100.0)  # refill clamps at burst
        assert bucket.tokens == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=2.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)

    def test_tenants_are_isolated(self):
        clock = FakeClock()
        quotas = TenantQuotas(rate=1.0, burst=1.0, clock=clock)
        assert quotas.check("flood").allowed
        assert not quotas.check("flood").allowed
        # The flooding tenant's empty bucket must not affect anyone else.
        assert quotas.check("wellbehaved").allowed
        assert quotas.tenants() == ["flood", "wellbehaved"]


class TestCircuitBreaker:
    def test_consecutive_failures_trip(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, recovery_s=5.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state == BreakerState.OPEN
        assert breaker.trips == 1
        assert not breaker.allows()

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == BreakerState.CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_s=5.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allows()
        clock.advance(5.0)
        assert breaker.state == BreakerState.HALF_OPEN
        assert breaker.allows()  # the probe
        assert not breaker.allows()  # everyone else stays degraded
        breaker.record_success()
        assert breaker.state == BreakerState.CLOSED
        assert breaker.allows()

    def test_probe_failure_reopens_and_restarts_the_clock(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_s=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allows()
        breaker.record_failure()
        assert breaker.state == BreakerState.OPEN
        clock.advance(4.9)
        assert not breaker.allows()
        clock.advance(0.1)
        assert breaker.allows()

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(recovery_s=0.0)


class TestWorkloadBreakers:
    def test_classes_are_isolated(self):
        clock = FakeClock()
        breakers = WorkloadBreakers(
            failure_threshold=1, recovery_s=5.0, clock=clock
        )
        breakers.get("simulate:fpppp").record_failure()
        assert not breakers.get("simulate:fpppp").allows()
        assert breakers.get("simulate:swim").allows()
        assert breakers.states() == {
            "simulate:fpppp": "open",
            "simulate:swim": "closed",
        }
        assert breakers.total_trips() == 1
