"""Smoke tests: every example script runs and produces expected output."""

import pathlib
import subprocess
import sys

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py", "fpppp", "2")
    assert "page coloring (IRIX)" in out
    assert "CDPC speedup over page coloring" in out


def test_algorithm_walkthrough():
    out = run_example("algorithm_walkthrough.py")
    for step in ("step 1", "step 2", "step 3", "step 4", "step 5"):
        assert step in out
    assert "array starts" in out


def test_policy_comparison():
    out = run_example("policy_comparison.py", "fpppp")
    assert "speedup cdpc" in out
    assert "145.fpppp" in out


def test_custom_workload():
    out = run_example("custom_workload.py")
    assert "custom workload 'redblack'" in out
    assert "speedup" in out


def test_characterization():
    out = run_example("characterization.py", "fpppp")
    assert "combined execution time" in out
    assert "bus utilization" in out


def test_figure3_and_5():
    out = run_example("figure3_and_5.py", "tomcatv", "4")
    assert "Figure 3" in out and "Figure 5" in out
    assert "cpu3" in out
    assert "' = one cache" in out


def test_affine_analysis():
    out = run_example("affine_analysis.py")
    assert "derived access patterns" in out
    assert "PartitionedAccess" in out
    assert "BoundaryAccess" in out
    assert "speedup" in out
