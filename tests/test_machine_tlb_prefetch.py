"""Tests for the TLB and the prefetch unit."""

import pytest

from repro.machine.config import TlbConfig
from repro.machine.prefetch import PrefetchUnit
from repro.machine.tlb import Tlb


class TestTlb:
    def test_miss_then_hit(self):
        tlb = Tlb(TlbConfig(entries=4))
        assert not tlb.access(1)
        assert tlb.access(1)
        assert tlb.hits == 1 and tlb.misses == 1

    def test_lru_eviction(self):
        tlb = Tlb(TlbConfig(entries=2))
        tlb.access(1)
        tlb.access(2)
        tlb.access(1)  # 2 becomes LRU
        tlb.access(3)  # evicts 2
        assert tlb.probe(1)
        assert not tlb.probe(2)
        assert tlb.probe(3)

    def test_probe_does_not_fill(self):
        tlb = Tlb(TlbConfig(entries=4))
        assert not tlb.probe(7)
        assert not tlb.access(7)  # still a miss: probe must not have filled

    def test_capacity_bound(self):
        tlb = Tlb(TlbConfig(entries=8))
        for vpage in range(100):
            tlb.access(vpage)
        assert len(tlb) == 8

    def test_invalidate_and_flush(self):
        tlb = Tlb(TlbConfig(entries=4))
        tlb.access(1)
        tlb.access(2)
        tlb.invalidate(1)
        assert not tlb.probe(1)
        tlb.flush()
        assert len(tlb) == 0


class TestPrefetchUnit:
    def test_no_stall_below_limit(self):
        unit = PrefetchUnit(4)
        for i in range(4):
            assert unit.issue(0.0, 500.0) == 0.0
        assert unit.outstanding_at(0.0) == 4

    def test_fifth_prefetch_stalls_until_earliest_completes(self):
        # Section 6.2: the processor supports up to four outstanding
        # prefetches; a fifth stalls the processor.
        unit = PrefetchUnit(4)
        for completion in (100.0, 200.0, 300.0, 400.0):
            unit.issue(0.0, completion)
        stall = unit.issue(50.0, 550.0)
        assert stall == pytest.approx(50.0)  # waits until t=100

    def test_completions_retire_with_time(self):
        unit = PrefetchUnit(2)
        unit.issue(0.0, 100.0)
        unit.issue(0.0, 200.0)
        assert unit.outstanding_at(150.0) == 1
        assert unit.issue(150.0, 600.0) == 0.0

    def test_reset(self):
        unit = PrefetchUnit(1)
        unit.issue(0.0, 1000.0)
        unit.reset()
        assert unit.outstanding_at(0.0) == 0

    def test_rejects_zero_limit(self):
        with pytest.raises(ValueError):
            PrefetchUnit(0)
