"""Tests for data layout (alignment/padding) and summary extraction."""

import pytest

from repro.compiler.ir import (
    ArrayDecl,
    BoundaryAccess,
    Communication,
    Loop,
    LoopKind,
    PartitionedAccess,
    Phase,
    Program,
    StridedAccess,
    WholeArrayAccess,
)
from repro.compiler.padding import layout_arrays
from repro.compiler.summaries import extract_summary
from repro.common import Partitioning


def arrays(n=3, size=4096):
    return tuple(ArrayDecl(f"a{i}", size) for i in range(n))


class TestLayout:
    def test_aligned_starts_on_line_boundaries(self):
        layout = layout_arrays(arrays(), line_size=64, l1_size=1024)
        for name in layout.bases:
            assert layout.bases[name] % 64 == 0

    def test_aligned_group_partners_get_distinct_l1_offsets(self):
        # Section 5.4: starting addresses of data structures used together
        # never map to the same location in the on-chip cache.
        decls = arrays(4, size=1024)  # exactly one L1 of data each
        groups = [("a0", "a1"), ("a1", "a2"), ("a0", "a2")]
        layout = layout_arrays(decls, line_size=64, l1_size=1024, groups=groups)
        offsets = {
            name: (layout.bases[name] // 64) % 16 for name in ("a0", "a1", "a2")
        }
        assert len(set(offsets.values())) == 3

    def test_unaligned_packs_with_line_straddling_gaps(self):
        layout = layout_arrays(arrays(), line_size=64, l1_size=1024, aligned=False)
        assert layout.bases["a1"] % 64 != 0

    def test_extent_and_pages(self):
        layout = layout_arrays(arrays(2, size=1024), line_size=64, l1_size=1024)
        lo, hi = layout.extent()
        assert lo == 0
        assert hi >= 2048
        assert len(layout.pages("a0", page_size=256)) == 4

    def test_array_at(self):
        layout = layout_arrays(arrays(2, size=1024), line_size=64, l1_size=1024)
        assert layout.array_at(layout.bases["a1"] + 10) == "a1"
        assert layout.array_at(10**9) is None

    def test_base_address_offset(self):
        layout = layout_arrays(arrays(1), line_size=64, l1_size=1024,
                               base_address=1 << 20)
        assert layout.bases["a0"] >= 1 << 20

    def test_validation(self):
        with pytest.raises(ValueError):
            layout_arrays(arrays(), line_size=0, l1_size=1024)


def build_program():
    decls = (
        ArrayDecl("part", 4096),
        ArrayDecl("comm", 4096),
        ArrayDecl("cyc", 4096),
        ArrayDecl("whole", 4096),
    )
    loop1 = Loop(
        "stencil",
        LoopKind.PARALLEL,
        (
            PartitionedAccess("part", units=16, is_write=True),
            BoundaryAccess("comm", units=16, comm=Communication.SHIFT,
                           boundary_fraction=1.0),
        ),
    )
    loop2 = Loop(
        "gather",
        LoopKind.PARALLEL,
        (
            StridedAccess("cyc", block_bytes=256),
            WholeArrayAccess("whole"),
            PartitionedAccess("part", units=16),
        ),
    )
    return Program("p", decls, (Phase("ph", (loop1, loop2)),))


class TestSummaries:
    def test_partitioned_arrays_summarized(self):
        program = build_program()
        layout = layout_arrays(program.arrays, 64, 1024)
        summary = extract_summary(program, layout)
        assert {p.array for p in summary.partitionings} == {"part", "comm"}

    def test_partitioning_fields(self):
        program = build_program()
        layout = layout_arrays(program.arrays, 64, 1024)
        summary = extract_summary(program, layout)
        part = summary.partitionings_of("part")[0]
        assert part.start == layout.base_of("part")
        assert part.size == 4096
        assert part.unit == 256
        assert part.partitioning is Partitioning.EVEN

    def test_communication_pattern_recorded(self):
        program = build_program()
        layout = layout_arrays(program.arrays, 64, 1024)
        summary = extract_summary(program, layout)
        assert len(summary.communications) == 1
        comm = summary.communications[0]
        assert comm.partitioning.array == "comm"
        assert comm.kind is Communication.SHIFT
        assert comm.boundary_bytes == 256

    def test_strided_arrays_not_summarized(self):
        # The su2cor rule: unanalyzable accesses disqualify the array.
        program = build_program()
        layout = layout_arrays(program.arrays, 64, 1024)
        summary = extract_summary(program, layout)
        assert "cyc" not in {p.array for p in summary.partitionings}
        assert "whole" not in {p.array for p in summary.partitionings}

    def test_group_accesses_cover_loop_co_occurrence(self):
        program = build_program()
        layout = layout_arrays(program.arrays, 64, 1024)
        summary = extract_summary(program, layout)
        assert summary.are_grouped("part", "comm")  # loop1
        assert summary.are_grouped("cyc", "part")  # loop2
        assert not summary.are_grouped("comm", "whole")  # never share a loop

    def test_duplicate_partitionings_deduplicated(self):
        # "part" appears in both loops with the same shape.
        program = build_program()
        layout = layout_arrays(program.arrays, 64, 1024)
        summary = extract_summary(program, layout)
        assert len(summary.partitionings_of("part")) == 1

    def test_strided_disqualifies_mixed_array(self):
        decls = (ArrayDecl("x", 4096),)
        loops = (
            Loop("l1", LoopKind.PARALLEL, (PartitionedAccess("x", units=16),)),
            Loop("l2", LoopKind.PARALLEL, (StridedAccess("x", block_bytes=256),)),
        )
        program = Program("p", decls, (Phase("ph", loops),))
        layout = layout_arrays(decls, 64, 1024)
        summary = extract_summary(program, layout)
        assert summary.partitionings == []
