"""End-to-end observability tests: engine, harness, campaign rollup, bench."""

from __future__ import annotations

import pytest

from repro import Session
from repro.harness import CampaignOptions, run_campaign
from repro.harness.retry import RetryPolicy
from repro.machine.config import sgi_base
from repro.obs import ObsConfig, Tracer, validate_metrics, validate_trace
from repro.sim.bench import run_bench
from repro.sim.engine import EngineOptions, run_benchmark
from repro.sim.tracegen import SimProfile


@pytest.fixture(scope="module")
def config():
    """Scaled 2-CPU SGI machine — the cheap way to run named workloads."""
    return sgi_base(2).scaled(16)


def _double(task: int) -> int:
    return task * 2


def _fail_on_odd(task: int) -> int:
    if task % 2:
        raise ValueError(f"task {task} is odd")
    return task


FAST = SimProfile.fast()


class TestEngineObs:
    def test_disabled_by_default(self, config):
        result = run_benchmark("tomcatv", config, profile=FAST)
        assert result.obs is None

    def test_enabled_run_is_bit_identical(self, config):
        plain = run_benchmark("tomcatv", config, profile=FAST)
        observed = run_benchmark(
            "tomcatv", config, profile=FAST, obs=ObsConfig()
        )
        assert observed.to_dict() == plain.to_dict()
        assert "obs" not in observed.to_dict()

    def test_report_contents(self, config):
        result = run_benchmark(
            "tomcatv", config, profile=FAST,
            obs=ObsConfig(profile_sample_rate=1),
        )
        report = result.obs
        assert report is not None
        validate_metrics(report["metrics"])
        counters = report["metrics"]["counters"]
        assert counters["machine.instructions"] > 0
        assert counters["physmem.allocations"] > 0
        span_names = {e["name"] for e in report["trace_events"] if e["ph"] == "X"}
        assert {"compile.summaries", "os.setup", "sim.init", "sim.loop"} <= span_names
        validate_trace(
            {"schema": "repro.obs.trace/v1",
             "traceEvents": report["trace_events"]}
        )

    def test_metrics_only_config_skips_trace(self, config):
        result = run_benchmark(
            "tomcatv", config, profile=FAST,
            obs=ObsConfig(tracing=False),
        )
        assert "trace_events" not in result.obs
        assert result.obs["metrics"]["counters"]


class TestHarnessSpans:
    def test_serial_spans_one_per_attempt(self):
        tracer = Tracer()
        campaign = run_campaign(
            _double, [1, 2, 3],
            options=CampaignOptions(tracer=tracer),
            max_workers=1,
        )
        assert campaign.report.completed == 3
        events = [e for e in tracer.export() if e["name"] == "harness.task"]
        assert len(events) == 3
        assert tracer.depth == 0

    def test_parallel_failure_closes_span_with_error(self):
        tracer = Tracer()
        campaign = run_campaign(
            _fail_on_odd, [1, 2, 3, 4],
            options=CampaignOptions(
                tracer=tracer,
                retry=RetryPolicy(max_attempts=1, backoff_s=0.0),
            ),
            max_workers=2,
        )
        assert campaign.report.completed == 2
        assert len(campaign.report.failures) == 2
        assert tracer.depth == 0
        events = [e for e in tracer.export() if e["name"] == "harness.task"]
        assert len(events) == 4
        errors = sorted(
            e["args"]["error"] for e in events if "error" in e["args"]
        )
        assert errors == ["ValueError", "ValueError"]

    def test_progress_events_reach_total(self):
        seen: list[dict] = []
        run_campaign(
            _double, [1, 2, 3],
            options=CampaignOptions(on_progress=seen.append),
            max_workers=1,
        )
        assert seen[0]["done"] == 0  # post-resume snapshot
        assert [event["done"] for event in seen[1:]] == [1, 2, 3]
        assert all(event["total"] == 3 for event in seen)
        assert seen[-1]["failed"] == 0


class TestCampaignRollup:
    def test_sweep_rollup_merges_runs(self, config):
        tracer = Tracer()
        session = Session(
            "tomcatv", config=config, profile=FAST, obs=True
        )
        results = session.sweep(
            policies=["page_coloring", "bin_hopping"],
            campaign=CampaignOptions(tracer=tracer),
            workers=1,
        )
        report = session.sweep_obs_report(tracer=tracer)
        assert report is not None
        merged = report["metrics"]
        validate_metrics(merged)
        assert merged["scope"] == "campaign"
        assert len(merged["runs"]) == 2
        assert merged["campaign"]["completed"] == 2
        per_run = sum(
            result.obs["metrics"]["counters"]["machine.instructions"]
            for result in results.values()
        )
        assert merged["counters"]["machine.instructions"] == per_run
        pids = {e["pid"] for e in report["trace_events"]}
        assert pids == {0, 1, 2}  # orchestrator + one pid per run
        names = {e["name"] for e in report["trace_events"] if e["ph"] == "X"}
        assert "harness.task" in names and "sim.loop" in names

    def test_rollup_none_without_obs(self, config):
        session = Session("tomcatv", config=config, profile=FAST)
        session.sweep(policies=["page_coloring"], workers=1)
        assert session.sweep_obs_report() is None


class TestBenchGuard:
    def test_bit_identity_holds_with_metrics_enabled(self, config):
        payload = run_bench(
            config,
            ["tomcatv"],
            options=EngineOptions(profile=FAST, obs=ObsConfig()),
            max_workers=1,
        )
        assert payload["divergences"] == []

    def test_session_bench_delegate(self, config):
        session = Session("tomcatv", config=config, profile=FAST)
        payload = session.bench(workers=1)
        assert payload["divergences"] == []
        assert payload["benchmark"] == "figure6_policy_sweep"
        assert payload["sampled"]["within_bound"] is True
        assert payload["speedup_sampled"] > 0


class TestBenchHistory:
    PAYLOAD = {
        "fast": {"refs_per_sec": 10.0},
        "speedup": 2.0,
        "speedup_warm": 3.0,
        "speedup_sampled": 4.0,
    }

    def test_write_appends_history_across_runs(self, tmp_path):
        import json

        from repro.sim.bench import write_bench

        path = tmp_path / "BENCH_engine.json"
        write_bench(dict(self.PAYLOAD), str(path))
        first = json.loads(path.read_text())
        assert len(first["history"]) == 1
        entry = first["history"][0]
        assert entry["refs_per_sec"] == 10.0
        assert entry["speedup"] == 2.0
        assert entry["speedup_sampled"] == 4.0
        assert "revision" in entry and "date" in entry

        write_bench(dict(self.PAYLOAD), str(path))
        second = json.loads(path.read_text())
        assert len(second["history"]) == 2
        assert second["history"][0] == first["history"][0]

    def test_corrupt_previous_report_starts_fresh(self, tmp_path):
        import json

        from repro.sim.bench import write_bench

        path = tmp_path / "BENCH_engine.json"
        path.write_text("{not json")
        write_bench(dict(self.PAYLOAD), str(path))
        assert len(json.loads(path.read_text())["history"]) == 1
