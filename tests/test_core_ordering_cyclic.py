"""Tests for Steps 2-4: set ordering, segment ordering, cyclic assignment."""

from repro.core.access_summary import AccessSummary
from repro.core.cyclic import (
    assign_cyclic,
    choose_rotation,
    emit_segment_pages,
    segments_conflict,
)
from repro.core.ordering import order_access_sets, order_segments_within_set
from repro.core.segments import UniformAccessSegment, UniformAccessSet


def make_set(cpus, num_pages=4, start=0, array="a"):
    return UniformAccessSet(
        frozenset(cpus),
        [UniformAccessSegment(array, start, start + num_pages, frozenset(cpus))],
    )


class TestOrderAccessSets:
    def test_figure4b_chain(self):
        # Pages accessed by both CPUs go between the two singletons.
        sets = [make_set({0}), make_set({1}), make_set({0, 1})]
        ordered = order_access_sets(sets)
        assert [tuple(sorted(s.cpus)) for s in ordered] == [(0,), (0, 1), (1,)]

    def test_neighbour_chain_many_cpus(self):
        # {p}, {p,p+1} sets for 4 CPUs must interleave along the path.
        sets = [make_set({p}) for p in range(4)]
        sets += [make_set({p, p + 1}) for p in range(3)]
        ordered = order_access_sets(sets)
        assert [tuple(sorted(s.cpus)) for s in ordered] == [
            (0,), (0, 1), (1,), (1, 2), (2,), (2, 3), (3,),
        ]

    def test_all_sets_present_exactly_once(self):
        sets = [make_set({p}) for p in range(5)] + [make_set({0, 1, 2, 3})]
        ordered = order_access_sets(sets)
        assert len(ordered) == len(sets)
        assert {id(s) for s in ordered} == {id(s) for s in sets}

    def test_large_set_inserted_next_to_max_overlap(self):
        sets = [make_set({0}), make_set({1}), make_set({2}),
                make_set({1, 2, 3})]
        ordered = order_access_sets(sets)
        keys = [tuple(sorted(s.cpus)) for s in ordered]
        big = keys.index((1, 2, 3))
        # Must be adjacent to a set sharing a processor.
        neighbours = set()
        if big > 0:
            neighbours.update(keys[big - 1])
        if big < len(keys) - 1:
            neighbours.update(keys[big + 1])
        assert neighbours & {1, 2, 3}

    def test_empty_input(self):
        assert order_access_sets([]) == []

    def test_disconnected_singletons_keep_deterministic_order(self):
        sets = [make_set({3}), make_set({1}), make_set({7})]
        ordered = order_access_sets(sets)
        assert [tuple(sorted(s.cpus)) for s in ordered] == [(1,), (3,), (7,)]


class TestOrderSegmentsWithinSet:
    def seg(self, array, start):
        return UniformAccessSegment(array, start, start + 4, frozenset({0}))

    def test_grouped_arrays_alternate(self):
        summary = AccessSummary()
        summary.add_group("a", "b")
        segments = [self.seg("a", 0), self.seg("a", 8), self.seg("b", 16),
                    self.seg("b", 24)]
        ordered = order_segments_within_set(segments, summary)
        arrays = [s.array for s in ordered]
        assert arrays == ["a", "b", "a", "b"]

    def test_without_groups_virtual_address_order(self):
        summary = AccessSummary()
        segments = [self.seg("b", 8), self.seg("a", 0), self.seg("c", 16)]
        ordered = order_segments_within_set(segments, summary)
        assert [s.start_page for s in ordered] == [0, 8, 16]

    def test_empty(self):
        assert order_segments_within_set([], AccessSummary()) == []


class TestCyclic:
    def grouped_summary(self):
        summary = AccessSummary()
        summary.add_group("a", "b")
        return summary

    def test_segments_conflict_requires_all_three_conditions(self):
        summary = self.grouped_summary()
        a = UniformAccessSegment("a", 0, 8, frozenset({0}))
        b = UniformAccessSegment("b", 8, 16, frozenset({0}))
        c = UniformAccessSegment("b", 16, 24, frozenset({1}))
        # Grouped + shared CPU + overlapping color range (16 colors).
        assert segments_conflict(a, b, summary, 0, 4, 16)
        # Disjoint processor sets: no conflict.
        assert not segments_conflict(a, c, summary, 0, 4, 16)
        # Disjoint color ranges: no conflict.
        assert not segments_conflict(a, b, summary, 0, 8, 32)
        # Same array never conflicts with itself.
        assert not segments_conflict(a, a, summary, 0, 0, 16)

    def test_emit_segment_pages_rotation(self):
        seg = UniformAccessSegment("a", 10, 14, frozenset({0}))
        assert emit_segment_pages(seg, 0) == [10, 11, 12, 13]
        assert emit_segment_pages(seg, 1) == [11, 12, 13, 10]
        assert emit_segment_pages(seg, 4) == [10, 11, 12, 13]

    def test_choose_rotation_zero_without_conflicts(self):
        seg = UniformAccessSegment("a", 0, 8, frozenset({0}))
        assert choose_rotation(seg, 0, [], 16) == 0

    def test_choose_rotation_separates_starts(self):
        # Conflicting segment starts at color 0; an 8-page segment placed at
        # position 0 should rotate so its first page lands far from color 0.
        seg = UniformAccessSegment("a", 0, 8, frozenset({0}))
        rotation = choose_rotation(seg, 0, [0], 16)
        length = seg.num_pages
        start_color = (0 + (length - rotation) % length) % 16
        assert min(start_color, 16 - start_color) >= 3

    def test_assign_cyclic_emits_all_pages_once(self):
        summary = self.grouped_summary()
        segments = [
            UniformAccessSegment("a", 0, 8, frozenset({0})),
            UniformAccessSegment("b", 8, 16, frozenset({0})),
        ]
        order, rotations = assign_cyclic(segments, summary, 4)
        assert sorted(order) == list(range(16))
        assert set(rotations) == set(segments)

    def test_assign_cyclic_rotates_conflicting_segment(self):
        # Both segments occupy the full color space, are grouped and share
        # CPU 0, so the second must be rotated away from the first's start.
        summary = self.grouped_summary()
        segments = [
            UniformAccessSegment("a", 0, 4, frozenset({0})),
            UniformAccessSegment("b", 4, 8, frozenset({0})),
        ]
        order, rotations = assign_cyclic(segments, summary, 4)
        assert rotations[segments[0]] == 0
        assert rotations[segments[1]] != 0
        # First VA pages of the two arrays get different colors.
        color_of = {page: i % 4 for i, page in enumerate(order)}
        assert color_of[0] != color_of[4]
