"""Tests for the ``python -m repro faults`` subcommand."""

import json

import pytest

from repro.__main__ import build_parser, main


class TestFaultsParser:
    def test_defaults(self):
        args = build_parser().parse_args(["faults", "tomcatv"])
        assert args.command == "faults"
        assert args.pressure == 0.0
        assert args.hint_loss == 0.0
        assert args.alloc_failure_rate == 0.0
        assert args.race_storm == 0
        assert args.seed == 0
        assert args.watchdog == pytest.approx(0.5)
        assert not args.check_invariants
        assert not args.no_cdpc

    def test_flags(self):
        args = build_parser().parse_args(
            ["faults", "swim", "--pressure", "0.6", "--hint-loss", "0.2",
             "--alloc-failure-rate", "0.05", "--race-storm", "3",
             "--seed", "7", "--check-invariants", "--cpus", "4"]
        )
        assert args.pressure == pytest.approx(0.6)
        assert args.hint_loss == pytest.approx(0.2)
        assert args.alloc_failure_rate == pytest.approx(0.05)
        assert args.race_storm == 3
        assert args.seed == 7
        assert args.check_invariants
        assert args.cpus == 4

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults", "gcc"])


FAST = ["--cpus", "2"]


class TestFaultsCommand:
    def test_acceptance_invocation(self, capsys):
        """The ISSUE acceptance command completes and reports degradation."""
        code = main(
            ["faults", "tomcatv", "--pressure", "0.6", "--hint-loss", "0.2",
             "--check-invariants", *FAST]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "degradation report" in out
        assert "reclaims" in out
        assert "watchdog trips" in out
        assert "fallback distance histogram" in out
        assert "hint honor rate" in out

    def test_fault_free_run(self, capsys):
        assert main(["faults", "tomcatv", *FAST]) == 0
        out = capsys.readouterr().out
        assert "degradation report" in out

    def test_json_payload_includes_plan_and_report(self, capsys):
        code = main(
            ["faults", "tomcatv", "--pressure", "0.5", "--hint-loss", "0.1",
             "--seed", "3", "--json", *FAST]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["fault_plan"]["pressure"] == pytest.approx(0.5)
        assert payload["fault_plan"]["seed"] == 3
        assert payload["degradation"] is not None
        assert payload["degradation"]["frames_seized"] > 0

    def test_same_seed_is_reproducible(self, capsys):
        argv = ["faults", "tomcatv", "--pressure", "0.6", "--hint-loss", "0.2",
                "--alloc-failure-rate", "0.02", "--seed", "11",
                "--check-invariants", "--json", *FAST]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        second = capsys.readouterr().out
        assert first == second

    def test_different_seeds_change_degradation(self, capsys):
        base = ["faults", "tomcatv", "--pressure", "0.6", "--hint-loss", "0.3",
                "--json", *FAST]
        main([*base, "--seed", "1"])
        a = json.loads(capsys.readouterr().out)
        main([*base, "--seed", "2"])
        b = json.loads(capsys.readouterr().out)
        assert a["degradation"] != b["degradation"] or a["wall_ns"] != b["wall_ns"]
