"""Smoke tests: every workload runs end-to-end under every policy mode."""

import pytest

from repro.machine.config import sgi_base
from repro.sim.engine import EngineOptions, run_benchmark
from repro.sim.tracegen import SimProfile
from repro.workloads import WORKLOAD_NAMES

FAST = SimProfile.fast()


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_workload_runs_under_all_modes(name):
    config = sgi_base(4).scaled(16)
    results = {}
    for label, options in (
        ("pc", EngineOptions(policy="page_coloring", profile=FAST)),
        ("bh", EngineOptions(policy="bin_hopping", profile=FAST)),
        ("cdpc", EngineOptions(policy="page_coloring", cdpc=True, profile=FAST)),
        ("cdpc_touch", EngineOptions(policy="bin_hopping", cdpc=True, profile=FAST)),
        ("pf", EngineOptions(policy="page_coloring", prefetch=True, profile=FAST)),
    ):
        result = run_benchmark(name, config, options)
        results[label] = result
        assert result.wall_ns > 0, label
        assert result.stats.total_instructions() > 0, label
        # Time accounting closes: per-CPU totals never exceed the weighted
        # wall time by more than rounding.
        for cpu in result.stats.cpus:
            assert cpu.busy_ns >= 0 and cpu.memory_stall_ns >= 0

    # CDPC never loses badly to its own baseline for any workload (the
    # paper's worst case is su2cor's slight degradation).
    assert results["cdpc"].wall_ns < results["pc"].wall_ns * 1.15, name


@pytest.mark.parametrize("name", ("tomcatv", "applu", "fpppp", "wave5"))
def test_workload_runs_unaligned(name):
    config = sgi_base(4).scaled(16)
    result = run_benchmark(
        name, config, EngineOptions(aligned=False, profile=FAST)
    )
    assert result.wall_ns > 0
    assert not result.aligned


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_instruction_counts_scale_with_occurrences(name):
    """Weighted totals reflect phase occurrence counts."""
    config = sgi_base(2).scaled(16)
    result = run_benchmark(name, config, EngineOptions(profile=FAST))
    total_weight = sum(p.occurrences for p in result.phases)
    raw = sum(p.stats.total_instructions() for p in result.phases)
    assert result.stats.total_instructions() >= raw  # weighting >= raw sum
    assert total_weight >= len(result.phases)
