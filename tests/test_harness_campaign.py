"""Tests for the campaign orchestrator: retries, watchdog, degradation.

The task functions are module-level so they pickle to pool workers.
Chaos scenarios (SIGKILL, hangs) coordinate through marker files in a
temporary directory passed inside each task.
"""

import os
import time
from pathlib import Path

import pytest

from repro.harness import (
    Campaign,
    CampaignError,
    CampaignOptions,
    FailureKind,
    RetryPolicy,
    run_campaign,
)

FAST_RETRY = RetryPolicy(max_attempts=3, backoff_s=0.01, max_backoff_s=0.05)


def square(task):
    return task * task


def record_and_square(task):
    value, scratch = task
    counter = Path(scratch) / f"ran_{value}"
    counter.write_text(str(int(counter.read_text()) + 1 if counter.exists() else 1))
    return value * value


def raise_on_three(task):
    if task == 3:
        raise ValueError("three is right out")
    return task * task


def flaky_until_marked(task):
    value, scratch = task
    marker = Path(scratch) / f"failed_{value}"
    if value == 2 and not marker.exists():
        marker.write_text("")
        raise RuntimeError("transient glitch")
    return value * value


def hang_once(task):
    value, scratch = task
    marker = Path(scratch) / f"hung_{value}"
    if value == 1 and not marker.exists():
        marker.write_text("")
        time.sleep(300)
    return value * value


def interrupt_on_two(task):
    if task == 2:
        raise KeyboardInterrupt
    return task * task


class TestBasicExecution:
    @pytest.mark.parametrize("max_workers", [1, 2])
    def test_results_in_task_order(self, max_workers):
        campaign = run_campaign(square, [3, 1, 2], max_workers=max_workers)
        assert campaign.results == [9, 1, 4]
        assert campaign.report.completed == 3
        assert campaign.report.ok
        assert campaign.report.retries == 0

    def test_empty_campaign(self):
        campaign = run_campaign(square, [])
        assert campaign.results == []
        assert campaign.report.ok

    def test_labels_and_keys_must_match(self):
        with pytest.raises(ValueError):
            run_campaign(square, [1, 2], labels=["only-one"])
        with pytest.raises(ValueError):
            run_campaign(square, [1, 2], keys=["only-one"])

    def test_store_requires_keys(self, tmp_path):
        with pytest.raises(ValueError):
            run_campaign(
                square, [1], options=CampaignOptions(store=str(tmp_path))
            )


class TestExceptionTaxonomy:
    @pytest.mark.parametrize("max_workers", [1, 2])
    def test_graceful_partial_results(self, max_workers):
        campaign = run_campaign(
            raise_on_three, [1, 2, 3, 4], max_workers=max_workers
        )
        assert campaign.results == [1, 4, None, 16]
        assert campaign.completed() == {0: 1, 1: 4, 3: 16}
        [failure] = campaign.report.failures
        assert failure.kind is FailureKind.EXCEPTION
        assert failure.index == 2
        assert "three is right out" in failure.message
        assert campaign.report.failure_counts() == {"exception": 1}
        assert not campaign.report.ok

    @pytest.mark.parametrize("max_workers", [1, 2])
    def test_strict_raises_the_original_exception(self, max_workers):
        with pytest.raises(ValueError, match="three is right out"):
            run_campaign(
                raise_on_three,
                [1, 2, 3, 4],
                options=CampaignOptions(strict=True),
                max_workers=max_workers,
            )

    @pytest.mark.parametrize("max_workers", [1, 2])
    def test_exception_retry_when_opted_in(self, tmp_path, max_workers):
        retry = RetryPolicy(
            max_attempts=3,
            backoff_s=0.01,
            retryable=frozenset({FailureKind.EXCEPTION}),
        )
        campaign = run_campaign(
            flaky_until_marked,
            [(1, str(tmp_path)), (2, str(tmp_path))],
            options=CampaignOptions(retry=retry),
            max_workers=max_workers,
        )
        assert campaign.results == [1, 4]
        assert campaign.report.retries == 1
        assert campaign.report.failed_attempts == {"exception": 1}
        assert campaign.report.ok  # recovered → no final failures

    def test_raise_if_failed(self):
        campaign = run_campaign(raise_on_three, [3])
        with pytest.raises(CampaignError, match="exception"):
            campaign.raise_if_failed()


class TestWatchdog:
    def test_hung_worker_is_killed_and_task_retried(self, tmp_path):
        options = CampaignOptions(
            timeout_s=1.0, heartbeat_s=0.05, retry=FAST_RETRY
        )
        start = time.monotonic()
        campaign = run_campaign(
            hang_once,
            [(1, str(tmp_path)), (2, str(tmp_path))],
            options=options,
            max_workers=2,
        )
        elapsed = time.monotonic() - start
        assert campaign.results == [1, 4]
        assert campaign.report.failed_attempts.get("timeout") == 1
        assert campaign.report.pool_restarts >= 1
        assert campaign.report.retries >= 1
        assert elapsed < 60  # nowhere near the 300s hang

    def test_timeout_exhaustion_reports_failure(self, tmp_path):
        # Every attempt hangs: marker removed each time → task can never
        # finish and must surface as a timeout failure.
        options = CampaignOptions(
            timeout_s=0.5,
            heartbeat_s=0.05,
            retry=RetryPolicy(max_attempts=2, backoff_s=0.01),
        )
        campaign = run_campaign(
            hang_forever_task,
            [(1, str(tmp_path))],
            options=options,
            max_workers=2,
        )
        assert campaign.results == [None]
        [failure] = campaign.report.failures
        assert failure.kind is FailureKind.TIMEOUT
        assert failure.attempts == 2


def hang_forever_task(task):
    time.sleep(300)


class TestKeyboardInterrupt:
    def test_serial_interrupt_returns_partial_campaign(self):
        campaign = run_campaign(
            interrupt_on_two, [1, 2, 3], max_workers=1
        )
        assert campaign.results == [1, None, None]
        assert campaign.report.interrupted
        kinds = {f.kind for f in campaign.report.failures}
        assert kinds == {FailureKind.CANCELLED}
        assert len(campaign.report.failures) == 2

    def test_serial_interrupt_strict_reraises(self):
        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                interrupt_on_two,
                [1, 2, 3],
                options=CampaignOptions(strict=True),
                max_workers=1,
            )

    def test_interrupt_flushes_completed_results_to_store(self, tmp_path):
        store_dir = tmp_path / "store"
        campaign = run_campaign(
            interrupt_on_two,
            [1, 2, 3],
            keys=["k1", "k2", "k3"],
            options=CampaignOptions(store=str(store_dir)),
            max_workers=1,
        )
        assert campaign.report.interrupted
        from repro.harness import ResultStore

        store = ResultStore(store_dir)
        assert store.get("k1") == 1  # durable despite the interrupt
        assert store.get("k2") is None

    def test_raise_if_failed_reraises_interrupt(self):
        campaign = run_campaign(interrupt_on_two, [2], max_workers=1)
        with pytest.raises(KeyboardInterrupt):
            campaign.raise_if_failed()


class TestResume:
    def test_only_missing_tasks_execute(self, tmp_path):
        store = str(tmp_path / "store")
        scratch = str(tmp_path / "scratch")
        os.makedirs(scratch)
        tasks = [(i, scratch) for i in (1, 2, 3)]
        keys = [f"task{i}" for i in (1, 2, 3)]
        options = CampaignOptions(store=store)

        first = run_campaign(
            record_and_square, tasks[:2], keys=keys[:2], options=options,
            max_workers=1,
        )
        assert first.report.executed == 2

        second = run_campaign(
            record_and_square, tasks, keys=keys, options=options,
            max_workers=1,
        )
        assert second.results == [1, 4, 9]
        assert second.report.loaded == 2
        assert second.report.executed == 1
        # The resumed tasks really did not run again.
        assert (Path(scratch) / "ran_1").read_text() == "1"
        assert (Path(scratch) / "ran_2").read_text() == "1"
        assert (Path(scratch) / "ran_3").read_text() == "1"

    def test_resume_disabled_reruns_everything(self, tmp_path):
        store = str(tmp_path / "store")
        scratch = str(tmp_path / "scratch")
        os.makedirs(scratch)
        tasks = [(1, scratch)]
        options = CampaignOptions(store=store)
        run_campaign(record_and_square, tasks, keys=["k"], options=options)
        rerun = run_campaign(
            record_and_square, tasks, keys=["k"],
            options=CampaignOptions(store=store, resume=False),
        )
        assert rerun.report.loaded == 0
        assert rerun.report.executed == 1
        assert (Path(scratch) / "ran_1").read_text() == "2"


class TestReportSerialization:
    def test_to_dict_round_trips_through_json(self):
        import json

        campaign = run_campaign(raise_on_three, [1, 3])
        payload = json.loads(json.dumps(campaign.report.to_dict()))
        assert payload["total"] == 2
        assert payload["completed"] == 1
        assert payload["failure_counts"] == {"exception": 1}
        assert payload["ok"] is False

    def test_summary_mentions_failures_and_loads(self, tmp_path):
        options = CampaignOptions(store=str(tmp_path))
        run_campaign(square, [1], keys=["a"], options=options)
        campaign = run_campaign(square, [1], keys=["a"], options=options)
        summary = campaign.report.summary()
        assert "1/1 completed" in summary
        assert "loaded from store" in summary

    def test_campaign_type(self):
        campaign = run_campaign(square, [2])
        assert isinstance(campaign, Campaign)
