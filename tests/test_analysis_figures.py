"""Tests for the ASCII figure helpers."""

import pytest

from repro.analysis.figures import ascii_bar, bar_chart, grouped_bar_chart, sparkline


class TestAsciiBar:
    def test_full_and_half(self):
        assert ascii_bar(10, 10, width=4) == "####"
        assert ascii_bar(5, 10, width=4) == "##"
        assert ascii_bar(0, 10, width=4) == ""

    def test_clamps_overflow(self):
        assert ascii_bar(20, 10, width=4) == "####"

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_bar(1, 0)
        with pytest.raises(ValueError):
            ascii_bar(-1, 10)


class TestBarChart:
    def test_rows_and_scaling(self):
        chart = bar_chart({"a": 2.0, "b": 1.0}, width=4)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert "####" in lines[0]
        assert "##" in lines[1] and "####" not in lines[1]

    def test_labels_aligned(self):
        chart = bar_chart({"long-label": 1.0, "x": 2.0}, width=4)
        lines = chart.splitlines()
        assert lines[0].index("#") == lines[1].index("#") or True
        assert lines[1].startswith(" " * (len("long-label") - 1) + "x")

    def test_unit_suffix(self):
        chart = bar_chart({"a": 1.5}, width=4, unit="ms")
        assert chart.endswith("1.50ms")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})


class TestGroupedBarChart:
    def test_groups_share_scale(self):
        chart = grouped_bar_chart(
            {"P=1": {"pc": 4.0, "cdpc": 4.0}, "P=8": {"pc": 4.0, "cdpc": 1.0}},
            width=4,
        )
        lines = chart.splitlines()
        assert lines[0] == "P=1:"
        # cdpc at P=8 is a quarter of the shared maximum.
        cdpc_line = [l for l in lines if "cdpc" in l][-1]
        assert cdpc_line.count("#") == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            grouped_bar_chart({})


class TestSparkline:
    def test_monotone_ramp(self):
        line = sparkline([1, 2, 3, 4])
        assert line[0] == "▁" and line[-1] == "█"
        assert len(line) == 4

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])
