"""Tests for Step 5, the orchestrator and the CDPC runtime."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.padding import layout_arrays
from repro.compiler.summaries import extract_summary
from repro.core.access_summary import AccessSummary, ArrayPartitioning
from repro.core.coloring import generate_page_colors
from repro.core.runtime import CdpcRuntime
from repro.machine.config import CacheConfig, MachineConfig
from repro.osmodel.policies import BinHoppingPolicy, CdpcHintPolicy, PageColoringPolicy
from repro.osmodel.vm import VirtualMemory

from tests.conftest import make_two_array_program

PAGE = 256


def aligned_summary(num_arrays=4, pages_per_array=32) -> AccessSummary:
    """Arrays whose sizes are exact color multiples (the tomcatv shape)."""
    summary = AccessSummary()
    for i in range(num_arrays):
        summary.partitionings.append(
            ArrayPartitioning(
                f"a{i}",
                i * pages_per_array * PAGE,
                pages_per_array * PAGE,
                PAGE,
            )
        )
    for i in range(num_arrays):
        for j in range(i + 1, num_arrays):
            summary.add_group(f"a{i}", f"a{j}")
    return summary


class TestGeneratePageColors:
    def test_round_robin_colors(self):
        summary = aligned_summary(1, 8)
        result = generate_page_colors(summary, PAGE, 4, 2)
        assert [result.colors[p] for p in result.page_order] == [
            0, 1, 2, 3, 0, 1, 2, 3,
        ]

    def test_page_order_is_permutation(self):
        summary = aligned_summary(4, 32)
        result = generate_page_colors(summary, PAGE, 16, 4)
        assert sorted(result.page_order) == list(range(128))
        assert len(result.colors) == 128

    def test_conflict_free_when_per_cpu_footprint_fits(self):
        # 4 arrays x 32 pages over 8 CPUs: 16 pages per CPU < 64 colors.
        summary = aligned_summary(4, 32)
        result = generate_page_colors(summary, PAGE, 64, 8)
        seg_cpus = {}
        for seg in result.segments:
            for page in seg.pages:
                seg_cpus.setdefault(page, set()).update(seg.cpus)
        assert result.max_pages_on_one_color(
            lambda page: seg_cpus.get(page, ())
        ) == 1

    def test_colors_within_range(self):
        summary = aligned_summary(3, 16)
        result = generate_page_colors(summary, PAGE, 8, 4)
        assert all(0 <= c < 8 for c in result.colors.values())

    def test_pages_per_color_balanced(self):
        summary = aligned_summary(4, 32)
        result = generate_page_colors(summary, PAGE, 16, 4)
        histogram = result.pages_per_color()
        assert max(histogram) - min(histogram) <= 1

    def test_rejects_bad_color_count(self):
        with pytest.raises(ValueError):
            generate_page_colors(aligned_summary(), PAGE, 0, 2)

    def test_empty_summary_empty_result(self):
        result = generate_page_colors(AccessSummary(), PAGE, 16, 4)
        assert result.page_order == []
        assert result.colors == {}

    @given(st.integers(1, 6), st.integers(4, 40), st.integers(1, 8),
           st.integers(4, 64))
    @settings(max_examples=40, deadline=None)
    def test_permutation_property(self, arrays, pages, cpus, colors):
        summary = aligned_summary(arrays, pages)
        result = generate_page_colors(summary, PAGE, colors, cpus)
        assert sorted(result.page_order) == sorted(set(result.page_order))
        assert all(0 <= c < colors for c in result.colors.values())
        total = arrays * pages
        assert len(result.page_order) == total


class TestCdpcRuntime:
    def machine(self) -> MachineConfig:
        return MachineConfig(
            num_cpus=2,
            page_size=PAGE,
            l1d=CacheConfig(1024, 64, 2),
            l1i=CacheConfig(1024, 64, 2),
            l2=CacheConfig(4096, 64, 1),  # 16 colors
        )

    def test_from_program_produces_hints(self):
        config = self.machine()
        program = make_two_array_program(PAGE)
        layout = layout_arrays(program.arrays, 64, 1024)
        runtime = CdpcRuntime.from_program(program, layout, config)
        assert len(runtime.hints) == 16  # both arrays fully hinted

    def test_touch_order_matches_page_order(self):
        config = self.machine()
        program = make_two_array_program(PAGE)
        layout = layout_arrays(program.arrays, 64, 1024)
        runtime = CdpcRuntime.from_program(program, layout, config)
        assert runtime.touch_order() == runtime.coloring.page_order

    def test_install_hints_via_madvise(self):
        config = self.machine()
        program = make_two_array_program(PAGE)
        layout = layout_arrays(program.arrays, 64, 1024)
        runtime = CdpcRuntime.from_program(program, layout, config)
        policy = CdpcHintPolicy(16, fallback=PageColoringPolicy(16))
        vm = VirtualMemory(config, policy)
        assert runtime.install_hints(vm) == 16
        first = runtime.coloring.page_order[0]
        vm.fault(first)
        assert vm.color_of_vpage(first) == runtime.hints[first]

    def test_install_by_touching_realizes_same_mapping(self):
        # The two delivery mechanisms of Section 5.3 must agree.
        config = self.machine()
        program = make_two_array_program(PAGE)
        layout = layout_arrays(program.arrays, 64, 1024)
        runtime = CdpcRuntime.from_program(program, layout, config)

        madvise_vm = VirtualMemory(
            config, CdpcHintPolicy(16, fallback=PageColoringPolicy(16))
        )
        runtime.install_hints(madvise_vm)
        for page in runtime.touch_order():
            madvise_vm.ensure_mapped(page)

        touch_vm = VirtualMemory(config, BinHoppingPolicy(16))
        runtime.install_by_touching(touch_vm)

        for page in runtime.touch_order():
            assert madvise_vm.color_of_vpage(page) == touch_vm.color_of_vpage(page)

    def test_num_cpus_defaults_to_config(self):
        config = self.machine()
        summary = extract_summary(
            make_two_array_program(PAGE),
            layout_arrays(make_two_array_program(PAGE).arrays, 64, 1024),
        )
        runtime = CdpcRuntime.from_summary(summary, config)
        assert runtime.num_cpus == 2
