"""Fast-path/oracle equivalence: the optimization must be bit-identical.

The vectorized hit filter (``EngineOptions(fast_path=True)``) retires
references in bulk only when it can prove the oracle would produce the
same state and timing; everything else falls through to the per-reference
path.  These tests pin the contract: for every policy and engine feature
that shapes the reference stream or the memory-system state machine, the
full serialized ``RunResult`` — counters, float stall times, overheads,
degradation report — matches the ``fast_path=False`` oracle exactly.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.machine.config import sgi_base
from repro.robustness.faults import FaultPlan
from repro.sim.engine import EngineOptions, run_benchmark
from repro.sim.tracegen import SimProfile

CONFIG = sgi_base(4).scaled(16)

#: Every variant crosses a different hazard for the hit filter:
#: coherence (cdpc/bin_hopping layouts), mid-reference TLB fills
#: (prefetch_fills_tlb), phase-boundary remapping (dynamic_recolor), and
#: mid-run frame seizure/reclaim (fault plans).
VARIANTS = {
    "page_coloring": {"policy": "page_coloring"},
    "bin_hopping": {"policy": "bin_hopping"},
    "cdpc": {"policy": "bin_hopping", "cdpc": True},
    "prefetch": {"policy": "page_coloring", "prefetch": True},
    "prefetch_fills_tlb": {
        "policy": "bin_hopping",
        "cdpc": True,
        "prefetch": True,
        "prefetch_fills_tlb": True,
    },
    "dynamic_recolor": {"policy": "bin_hopping", "dynamic_recolor": True},
    "fault_plan": {
        "policy": "bin_hopping",
        "cdpc": True,
        "fault_plan": FaultPlan(
            seed=7, pressure=0.4, hint_loss=0.2, alloc_failure_rate=0.02
        ),
    },
    "fault_race": {
        "policy": "bin_hopping",
        "race_seed": 3,
        "fault_plan": FaultPlan(seed=3, race_storm=2),
    },
}


@pytest.mark.parametrize("workload", ["tomcatv", "swim"])
@pytest.mark.parametrize("label", sorted(VARIANTS))
def test_fast_path_matches_reference(workload, label):
    base = EngineOptions(profile=SimProfile.fast(), **VARIANTS[label])
    fast = run_benchmark(
        workload, CONFIG, replace(base, fast_path=True, trace_cache=True)
    )
    reference = run_benchmark(
        workload, CONFIG, replace(base, fast_path=False, trace_cache=False)
    )
    assert fast.to_dict() == reference.to_dict()


def test_fast_path_is_the_default():
    assert EngineOptions().fast_path
    assert EngineOptions().trace_cache
