"""Tests for the service wire protocol: requests, responses, identity."""

import pytest

from repro.service.protocol import (
    ColoringRequest,
    RejectedOverload,
    RequestKind,
    ServiceResponse,
    Status,
)


class TestColoringRequest:
    def test_defaults_are_valid(self):
        request = ColoringRequest()
        assert request.kind == RequestKind.SIMULATE
        assert request.config().num_cpus == 8
        assert request.options().policy == "page_coloring"

    def test_kind_accepts_plain_strings(self):
        assert ColoringRequest(kind="predict").kind == RequestKind.PREDICT
        with pytest.raises(ValueError):
            ColoringRequest(kind="frobnicate")

    def test_validation_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            ColoringRequest(machine="cray")
        with pytest.raises(ValueError):
            ColoringRequest(policy="random")
        with pytest.raises(ValueError):
            ColoringRequest(cpus=0)
        with pytest.raises(ValueError):
            ColoringRequest(deadline_s=0.0)
        with pytest.raises(ValueError):
            # Synthetic knobs only make sense on synthetic requests.
            ColoringRequest(synthetic=(("key", 1),))

    def test_cdpc_policy_label_maps_onto_engine_options(self):
        options = ColoringRequest(policy="cdpc").options()
        assert options.cdpc is True
        assert options.policy == "bin_hopping"

    def test_roundtrip_to_dict(self):
        request = ColoringRequest(
            workload="swim",
            kind=RequestKind.PREDICT,
            tenant="acme",
            cpus=4,
            machine="alpha",
            scale=32,
            policy="cdpc",
            deadline_s=1.5,
            request_id="abc",
        )
        assert ColoringRequest.from_dict(request.to_dict()) == request

    def test_synthetic_roundtrip_normalizes_knob_order(self):
        request = ColoringRequest(
            kind=RequestKind.SYNTHETIC,
            synthetic=(("delay_ms", 2.0), ("key", "hot-1")),
        )
        again = ColoringRequest.from_dict(request.to_dict())
        assert again.synthetic == request.synthetic

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown request field"):
            ColoringRequest.from_dict({"workload": "swim", "color": "red"})

    def test_from_dict_rejects_non_object(self):
        with pytest.raises(ValueError):
            ColoringRequest.from_dict(["nope"])  # type: ignore[arg-type]


class TestFingerprint:
    def test_identical_questions_share_a_fingerprint(self):
        assert ColoringRequest().fingerprint() == ColoringRequest().fingerprint()

    def test_tenant_and_deadline_do_not_change_identity(self):
        base = ColoringRequest().fingerprint()
        assert ColoringRequest(tenant="other").fingerprint() == base
        assert ColoringRequest(deadline_s=9.0).fingerprint() == base
        assert ColoringRequest(request_id="x").fingerprint() == base

    def test_every_question_dimension_changes_identity(self):
        base = ColoringRequest().fingerprint()
        assert ColoringRequest(workload="swim").fingerprint() != base
        assert ColoringRequest(kind="predict").fingerprint() != base
        assert ColoringRequest(cpus=4).fingerprint() != base
        assert ColoringRequest(machine="alpha").fingerprint() != base
        assert ColoringRequest(scale=32).fingerprint() != base
        assert ColoringRequest(policy="cdpc").fingerprint() != base
        assert ColoringRequest(fast=False).fingerprint() != base

    def test_synthetic_knobs_are_identity(self):
        one = ColoringRequest(kind="synthetic", synthetic=(("key", 1),))
        two = ColoringRequest(kind="synthetic", synthetic=(("key", 2),))
        assert one.fingerprint() != two.fingerprint()

    def test_workload_class_groups_kind_and_workload(self):
        assert ColoringRequest(workload="swim").workload_class() == "simulate:swim"
        assert (
            ColoringRequest(workload="swim", kind="predict").workload_class()
            == "predict:swim"
        )


class TestServiceResponse:
    def test_ok_and_degraded_predicates(self):
        assert ServiceResponse(status=Status.OK).ok
        assert ServiceResponse(status=Status.DEGRADED).ok
        assert ServiceResponse(status=Status.DEGRADED).degraded
        assert not ServiceResponse(status=Status.REJECTED).ok
        assert not ServiceResponse(status=Status.FAILED).ok

    def test_raise_for_status(self):
        ServiceResponse(status=Status.OK).raise_for_status()
        with pytest.raises(RejectedOverload) as excinfo:
            ServiceResponse(
                status=Status.REJECTED,
                request_id="r1",
                reason="overload",
                retry_after_s=0.25,
            ).raise_for_status()
        assert excinfo.value.response.reason == "overload"
        with pytest.raises(RuntimeError, match="failed"):
            ServiceResponse(status=Status.FAILED, reason="boom").raise_for_status()

    def test_roundtrip_to_dict(self):
        response = ServiceResponse(
            status=Status.DEGRADED,
            request_id="r2",
            fingerprint="f" * 64,
            result={"kind": "predict"},
            cached=True,
            coalesced=True,
            reason="circuit_open",
            elapsed_ms=12.5,
        )
        again = ServiceResponse.from_dict(response.to_dict())
        assert again == response
