"""Geometry equivalence: new machine shapes keep the bit-identity contract.

The sliced XOR-hashed LLC and the three-level shared-LLC geometry thread
new state through the memory system (per-level lookup, slice-hash set
indexing, shared-LLC coherence).  The fast path and the columnar kernel
must remain bit-identical to the ``fast_path=False`` oracle on every one
of them — same counters, same float stall times, same serialized result.

A hypothesis sweep additionally explores random tiny geometries (slice
counts, associativities, optional mid level, shared vs private LLC) the
presets never produce, and the symbolic analyzer's occupancy witnesses
are replayed through the real simulator on the sliced geometry.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.config import MachineConfig, sliced_llc_8x, three_level
from repro.machine.hierarchy import CacheHierarchy, CacheLevel, xor_slice_masks
from repro.sim.engine import EngineOptions, run_benchmark, run_program
from repro.sim.tracegen import SimProfile

from tests.test_columnar_equivalence import programs

GEOMETRIES = {
    "sliced_llc_8x": sliced_llc_8x,
    "three_level": three_level,
}

POLICIES = {
    "page_coloring": {"policy": "page_coloring"},
    "bin_hopping": {"policy": "bin_hopping"},
    "cdpc": {"policy": "bin_hopping", "cdpc": True},
}


@pytest.mark.parametrize("geometry", sorted(GEOMETRIES))
@pytest.mark.parametrize("label", sorted(POLICIES))
def test_fast_and_columnar_match_oracle(geometry, label):
    config = GEOMETRIES[geometry](2).scaled(16)
    base = EngineOptions(profile=SimProfile.fast(), **POLICIES[label])
    oracle = run_benchmark(
        "tomcatv", config, replace(base, fast_path=False, trace_cache=False)
    )
    scalar = run_benchmark(
        "tomcatv", config,
        replace(base, fast_path=True, columnar=False, trace_cache=True),
    )
    columnar = run_benchmark(
        "tomcatv", config,
        replace(base, fast_path=True, columnar=True, trace_cache=True),
    )
    assert scalar.to_dict() == oracle.to_dict()
    assert columnar.to_dict() == oracle.to_dict()


@st.composite
def tiny_geometries(draw):
    """Random small hierarchies at a 256-byte page, 64-byte lines."""
    slices = draw(st.sampled_from([1, 2, 4]))
    assoc = draw(st.sampled_from([1, 2]))
    size = draw(st.sampled_from([8192, 16384]))
    shared = draw(st.booleans())
    lines_per_page = 256 // 64
    sets_per_slice = size // (64 * assoc * slices)
    if slices > 1:
        frame_masks, offset_masks = xor_slice_masks(
            slices, sets_per_slice // lines_per_page,
            page_shift=8, line_shift=6,
        )
        llc = CacheLevel(
            size, 64, assoc, shared=shared, slices=slices,
            frame_masks=frame_masks, offset_masks=offset_masks,
        )
    else:
        llc = CacheLevel(size, 64, assoc, shared=shared)
    mid = (
        CacheLevel(2048, 64, 2, hit_ns=25.0)
        if draw(st.booleans())
        else None
    )
    hierarchy = CacheHierarchy(
        l1d=CacheLevel(1024, 64, 2),
        l1i=CacheLevel(1024, 64, 2),
        mid=mid,
        llc=llc,
    )
    return MachineConfig(
        num_cpus=draw(st.integers(1, 3)), page_size=256, hierarchy=hierarchy
    )


class TestGeometryProperty:
    @settings(max_examples=15, deadline=None)
    @given(programs(), tiny_geometries(), st.booleans())
    def test_fast_path_bit_identical_on_random_geometries(
        self, program, config, cdpc
    ):
        base = EngineOptions(
            policy="bin_hopping" if cdpc else "page_coloring", cdpc=cdpc
        )
        fast = run_program(
            program, config,
            replace(base, fast_path=True, columnar=True, trace_cache=False),
        )
        oracle = run_program(
            program, config,
            replace(base, fast_path=False, trace_cache=False),
        )
        assert fast.to_dict() == oracle.to_dict()


class TestWitnessReplay:
    @pytest.mark.parametrize("preset", [sliced_llc_8x, three_level])
    def test_occupancy_witnesses_replay_through_simulator(self, preset):
        """A symbolic overflow witness is a real conflict on the machine."""
        from repro.checker.lint import _group_pairs
        from repro.checker.staticmiss import (
            derive_static_plan,
            program_image,
            replay_witness,
            verify_plan,
        )
        from repro.compiler.padding import layout_arrays
        from repro.workloads import get_workload

        config = preset(4).scaled(16)
        program = get_workload("tomcatv", scale=16).program
        layout = layout_arrays(
            program.arrays, config.l2.line_size, config.l1d.size,
            aligned=True, groups=_group_pairs(program),
        )
        image = program_image(program, layout, config, 4)
        plan = derive_static_plan(
            program, layout, config, policy="page_coloring", cdpc=False
        )
        verification = verify_plan(image, plan)
        assert verification.witnesses, "expected occupancy overflows"
        counts = replay_witness(verification.witnesses[0], config)
        assert counts["conflict"] > 0

    def test_witness_frames_come_from_the_color_function(self):
        """On the sliced geometry the replay must honor the slice hash —
        naive ``color + i * num_colors`` frames would land elsewhere."""
        config = sliced_llc_8x(1).scaled(16)
        cf = config.color_function
        assert not cf.classic
        some_color = 5
        it = cf.frames_of_color(some_color)
        frames = [next(it) for _ in range(4)]
        assert all(cf.color_of(f) == some_color for f in frames)
        assert any(
            f % cf.num_colors != some_color for f in frames
        ), "hash should break the classic frame arithmetic"
