"""Exact-value tests for the engine's time accounting."""

import math

import pytest

from repro.compiler.ir import ArrayDecl, Loop, LoopKind, PartitionedAccess, Phase, Program
from repro.machine.config import CacheConfig, MachineConfig
from repro.sim.engine import EngineOptions, _Simulation


def machine(num_cpus=4) -> MachineConfig:
    return MachineConfig(
        num_cpus=num_cpus,
        page_size=256,
        l1d=CacheConfig(1024, 64, 2),
        l1i=CacheConfig(1024, 64, 2),
        l2=CacheConfig(8192, 64, 1),
    )


def simple_program(pages=16):
    arrays = (ArrayDecl("a", pages * 256),)
    loop = Loop("l", LoopKind.PARALLEL, (PartitionedAccess("a", units=pages),))
    return Program("p", arrays, (Phase("ph", (loop,)),))


class TestBarrier:
    def test_barrier_equalizes_clocks_and_charges_imbalance(self):
        config = machine(3)
        sim = _Simulation(simple_program(), config, EngineOptions())
        sim.clocks = [100.0, 250.0, 175.0]
        sim._barrier()
        cost = 500.0 + 300.0 * math.log2(3)
        assert sim.clocks == [250.0 + cost] * 3
        stats = sim.ms.stats.cpus
        assert stats[0].overhead_ns["load_imbalance"] == pytest.approx(150.0)
        assert stats[1].overhead_ns["load_imbalance"] == pytest.approx(0.0)
        assert stats[2].overhead_ns["load_imbalance"] == pytest.approx(75.0)
        for cpu in range(3):
            assert stats[cpu].overhead_ns["synchronization"] == pytest.approx(cost)

    def test_single_cpu_barrier_free(self):
        config = machine(1)
        sim = _Simulation(simple_program(), config, EngineOptions())
        sim.clocks = [42.0]
        sim._barrier()
        assert sim.clocks == [42.0]
        assert sim.ms.stats.cpus[0].overhead_ns["synchronization"] == 0.0


class TestSequentialTail:
    def test_fraction_adds_master_time_and_slave_overhead(self):
        import dataclasses

        config = machine(2)
        program = dataclasses.replace(simple_program(), sequential_fraction=0.25)
        sim = _Simulation(program, config, EngineOptions())
        sim.clocks = [1000.0, 1000.0]
        sim._run_sequential_tail(400.0)
        assert sim.clocks == [1100.0, 1100.0]
        assert sim.ms.stats.cpus[0].busy_ns == pytest.approx(100.0)
        assert sim.ms.stats.cpus[1].overhead_ns["sequential"] == pytest.approx(100.0)

    def test_zero_fraction_is_noop(self):
        config = machine(2)
        sim = _Simulation(simple_program(), config, EngineOptions())
        sim.clocks = [10.0, 10.0]
        sim._run_sequential_tail(400.0)
        assert sim.clocks == [10.0, 10.0]


class TestInitAccounting:
    def test_init_touches_every_page_once(self):
        config = machine(2)
        program = simple_program(pages=16)
        sim = _Simulation(program, config, EngineOptions())
        sim.run_init()
        assert sim.vm.faults >= 16  # all data pages (plus pad spill-over)
        assert sim.init_ns > 0
        assert sim.clocks[0] == sim.clocks[1] == sim.init_ns

    def test_init_kernel_time_scales_with_faults(self):
        config = machine(1)
        small = _Simulation(simple_program(pages=4), config, EngineOptions())
        large = _Simulation(simple_program(pages=32), config, EngineOptions())
        small.run_init()
        large.run_init()
        assert (
            large.ms.stats.cpus[0].overhead_ns["kernel"]
            > small.ms.stats.cpus[0].overhead_ns["kernel"]
        )
