"""Cache-hierarchy geometry model: color functions, levels, serialization.

The exactness contract (module docstring of :mod:`repro.machine.hierarchy`)
is what the whole stack leans on: two frames of one color must be
conflict-equivalent — line ``k`` of both pages lands in the same global
cache set, for every ``k``.  These tests pin that contract for every
implementation, plus the balance and bijection properties the allocator
and the symbolic analyzer additionally require.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.machine.config import (
    MACHINE_PRESETS,
    CacheConfig,
    MachineConfig,
    sgi_base,
    sliced_llc_8x,
    three_level,
)
from repro.machine.hierarchy import (
    BitFieldColor,
    CacheHierarchy,
    CacheLevel,
    ColorFunction,
    SlicedHashColor,
    TableColor,
    xor_slice_masks,
)

#: Scaled-down configs of the three geometry shapes (classic, sliced,
#: three-level with a shared LLC), as the simulator actually runs them.
SHAPES = {
    "sgi_base": sgi_base(2).scaled(16),
    "sliced_llc_8x": sliced_llc_8x(2).scaled(16),
    "three_level": three_level(2).scaled(16),
}


class TestExactness:
    @pytest.mark.parametrize("name", sorted(SHAPES))
    def test_colors_are_conflict_equivalence_classes(self, name):
        """set_of(color_of(f), k) == line_index of line k of frame f."""
        config = SHAPES[name]
        cf = config.color_function
        psz = config.page_size
        line = config.l2.line_size
        lpp = psz // line
        for frame in range(4 * config.num_colors + 7):
            color = cf.color_of(frame)
            for k in range(lpp):
                assert cf.set_of(color, k) == cf.line_index(
                    frame * psz + k * line
                )

    @pytest.mark.parametrize("name", sorted(SHAPES))
    def test_color_set_pairs_biject_onto_sets(self, name):
        """(color, k) pairs cover every global set exactly once.

        This is the property that keeps the symbolic analyzer's
        ``(color, k)`` bins a faithful relabeling of physical sets.
        """
        config = SHAPES[name]
        cf = config.color_function
        lpp = config.page_size // config.l2.line_size
        num_sets = config.l2.num_sets
        seen = {
            cf.set_of(color, k)
            for color in range(cf.num_colors)
            for k in range(lpp)
        }
        assert len(seen) == cf.num_colors * lpp == num_sets
        assert seen == set(range(num_sets))

    @pytest.mark.parametrize("name", sorted(SHAPES))
    def test_frames_of_color_inverts_color_of(self, name):
        cf = SHAPES[name].color_function
        for color in (0, 1, cf.num_colors - 1):
            it = cf.frames_of_color(color)
            frames = [next(it) for _ in range(8)]
            assert frames == sorted(frames)
            assert all(cf.color_of(frame) == color for frame in frames)


class TestBalance:
    def test_xor_masks_give_perfectly_balanced_colors(self):
        """Every color owns the same share of a contiguous frame pool."""
        config = SHAPES["sliced_llc_8x"]
        cf = config.color_function
        pool = cf.num_colors * 64
        counts = [0] * cf.num_colors
        for frame in range(pool):
            counts[cf.color_of(frame)] += 1
        assert counts == [64] * cf.num_colors

    def test_sliced_preset_matches_classic_color_count(self):
        """The 8-slice hash reshapes colors without changing their number."""
        assert sliced_llc_8x(2).num_colors == sgi_base(2).num_colors == 256


class TestSlicedHashColor:
    def test_rejects_single_slice(self):
        with pytest.raises(ValueError):
            SlicedHashColor(
                slices=1, sets_per_slice=64, lines_per_page=4,
                line_shift=6, page_shift=8, frame_masks=(), offset_masks=(),
            )

    def test_rejects_mask_count_mismatch(self):
        with pytest.raises(ValueError):
            SlicedHashColor(
                slices=4, sets_per_slice=64, lines_per_page=4,
                line_shift=6, page_shift=8,
                frame_masks=(0b1,), offset_masks=(0, 0),
            )

    def test_rejects_partial_set_runs(self):
        with pytest.raises(ValueError):
            SlicedHashColor(
                slices=2, sets_per_slice=6, lines_per_page=4,
                line_shift=6, page_shift=8,
                frame_masks=(0b100,), offset_masks=(0,),
            )


class TestTableColor:
    def base(self) -> BitFieldColor:
        return BitFieldColor(
            num_colors=8, lines_per_page=4, num_sets=32, line_shift=6
        )

    def test_rejects_non_permutations(self):
        with pytest.raises(ValueError):
            TableColor(self.base(), tuple([0] * 8))

    def test_relabels_colors_but_not_sets(self):
        base = self.base()
        table = tuple((c + 3) % 8 for c in range(8))
        mapped = TableColor(base, table)
        assert mapped.num_colors == base.num_colors
        for frame in range(24):
            assert mapped.color_of(frame) == table[base.color_of(frame)]
            for k in range(4):
                # Exactness holds through the relabeling.
                assert mapped.set_of(mapped.color_of(frame), k) == \
                    mapped.line_index(frame * 256 + k * 64)
        # The physical sets are untouched; only the labels moved.
        for addr in range(0, 64 * 64, 64):
            assert mapped.line_index(addr) == base.line_index(addr)

    def test_hierarchy_color_table_is_applied(self):
        table = tuple(reversed(range(32)))
        hierarchy = CacheHierarchy(
            l1d=CacheLevel(1024, 64, 2),
            l1i=CacheLevel(1024, 64, 2),
            llc=CacheLevel(8192, 64, 1),
            color_table=table,
        )
        config = MachineConfig(page_size=256, hierarchy=hierarchy)
        assert isinstance(config.color_function, TableColor)
        assert config.color_of(0) == 31
        assert config.num_colors == 32


class TestXorSliceMasks:
    def test_rejects_bad_slice_counts(self):
        with pytest.raises(ValueError):
            xor_slice_masks(3, 32, 12, 7)
        with pytest.raises(ValueError):
            xor_slice_masks(1, 32, 12, 7)

    def test_masks_address_disjoint_frame_bits(self):
        frame_masks, offset_masks = xor_slice_masks(8, 32, 12, 7)
        assert len(frame_masks) == len(offset_masks) == 3
        combined = 0
        for mask in frame_masks:
            assert combined & mask == 0
            combined |= mask
        # No frame mask touches the span-identity low bits.
        assert combined & 31 == 0


class TestCacheLevel:
    def test_rejects_shared_l1(self):
        with pytest.raises(ValueError):
            CacheHierarchy(
                l1d=CacheLevel(1024, 64, 2, shared=True),
                l1i=CacheLevel(1024, 64, 2),
                llc=CacheLevel(8192, 64, 1),
            )

    def test_rejects_shared_mid(self):
        with pytest.raises(ValueError):
            CacheHierarchy(
                l1d=CacheLevel(1024, 64, 2),
                l1i=CacheLevel(1024, 64, 2),
                mid=CacheLevel(2048, 64, 2, shared=True),
                llc=CacheLevel(8192, 64, 1),
            )

    def test_rejects_unknown_write_policy(self):
        with pytest.raises(ValueError):
            CacheLevel(8192, 64, 1, write_policy="writearound")

    def test_rejects_indivisible_slicing(self):
        with pytest.raises(ValueError):
            CacheLevel(8192, 64, 3)

    def test_levels_order_innermost_first(self):
        hierarchy = three_level(1).hierarchy
        assert hierarchy is not None
        assert hierarchy.levels == (
            hierarchy.l1d, hierarchy.l1i, hierarchy.mid, hierarchy.llc
        )


class TestScaling:
    @pytest.mark.parametrize("name", sorted(MACHINE_PRESETS))
    @pytest.mark.parametrize("factor", [4, 16])
    def test_num_colors_invariant_under_scaling(self, name, factor):
        """The regression the geometry redesign must not break: scaling
        shrinks capacity and pages together, never the color count."""
        config = MACHINE_PRESETS[name](2)
        assert config.scaled(factor).num_colors == config.num_colors

    def test_scaled_preserves_slice_hash_frame_rows(self):
        config = sliced_llc_8x(2)
        scaled = config.scaled(16)
        assert scaled.hierarchy is not None and config.hierarchy is not None
        assert scaled.hierarchy.llc.frame_masks == config.hierarchy.llc.frame_masks
        # In-page mask bits above the smaller page are gone.
        page_mask = (scaled.page_size - 1) & ~(scaled.l2.line_size - 1)
        for mask in scaled.hierarchy.llc.offset_masks:
            assert mask & ~page_mask == 0

    def test_scaled_identity(self):
        config = three_level(2)
        assert config.scaled(1) is config

    def test_scaled_colors_still_exact(self):
        config = three_level(2).scaled(16)
        cf = config.color_function
        psz, line = config.page_size, config.l2.line_size
        for frame in range(2 * cf.num_colors):
            for k in range(psz // line):
                assert cf.set_of(cf.color_of(frame), k) == cf.line_index(
                    frame * psz + k * line
                )


class TestSerialization:
    @pytest.mark.parametrize("name", sorted(SHAPES))
    def test_round_trip_is_lossless(self, name):
        config = SHAPES[name]
        payload = json.loads(json.dumps(config.to_dict()))
        restored = MachineConfig.from_dict(payload)
        assert restored == config
        assert restored.num_colors == config.num_colors
        assert type(restored.color_function) is type(config.color_function)

    def test_derived_hierarchy_is_omitted_from_payloads(self):
        """Legacy configs keep their legacy wire format."""
        assert "hierarchy" not in sgi_base(4).to_dict()
        assert "hierarchy" in three_level(4).to_dict()

    def test_replace_of_flat_field_rederives_hierarchy(self):
        config = sgi_base(2)
        bigger = replace(config, l2=CacheConfig(4 * 1024 * 1024, 128, 1))
        assert bigger.num_colors == 1024
        assert bigger.hierarchy is not None and bigger.hierarchy.derived


class TestProtocol:
    @pytest.mark.parametrize("name", sorted(SHAPES))
    def test_presets_satisfy_the_protocol(self, name):
        assert isinstance(SHAPES[name].color_function, ColorFunction)

    def test_classic_flag_matches_geometry(self):
        assert SHAPES["sgi_base"].color_function.classic
        assert not SHAPES["sliced_llc_8x"].color_function.classic
        # The three-level LLC is unsliced, so its colors stay bit-fields.
        assert SHAPES["three_level"].color_function.classic
