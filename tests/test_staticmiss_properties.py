"""Property tests: the symbolic footprint engine vs brute-force traces.

The analyzer's whole value rests on one claim: its closed-form
progressions reproduce the trace generator's address streams *exactly*
— same lines, same per-line reference counts, same write/instruction
flags — without materializing a single address.  These tests generate
small random programs (footprints well under 64 pages) and check the
claim by brute force: enumerate every address ``tracegen`` would emit,
fold it into per-line counters, and demand equality.

The same ground truth then checks the verifier: a random color plan's
overflowing cache sets, found by enumerating pages from the traces,
must coincide with :func:`verify_plan`'s witness list.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checker.staticmiss import (
    Progression,
    StaticPlan,
    loop_line_touches,
    program_image,
    verify_plan,
)
from repro.compiler.ir import (
    ArrayDecl,
    BoundaryAccess,
    InstructionStream,
    Loop,
    LoopKind,
    PartitionedAccess,
    Phase,
    Program,
    StridedAccess,
    WholeArrayAccess,
)
from repro.compiler.padding import layout_arrays
from repro.compiler.parallelize import schedule_loop
from repro.machine.config import CacheConfig, MachineConfig
from repro.sim.tracegen import FLAG_INSTR, FLAG_WRITE, SimProfile, loop_traces


def machine(num_cpus: int) -> MachineConfig:
    return MachineConfig(
        num_cpus=num_cpus,
        page_size=256,
        l1d=CacheConfig(512, 64, 2),
        l1i=CacheConfig(512, 64, 2),
        l2=CacheConfig(4096, 64, 1),
    )


# ---------------------------------------------------------------------------
# Program generation


def build_accesses(rng: random.Random, names: list[str]):
    accesses = []
    for _ in range(rng.randint(1, 3)):
        name = rng.choice(names)
        kind = rng.randrange(4)
        sweeps = rng.choice([1.0, 2.0, 2.5, 3.0])
        if kind == 0:
            accesses.append(
                PartitionedAccess(
                    name,
                    units=rng.choice([1, 2, 4, 8]),
                    is_write=rng.random() < 0.4,
                    sweeps=sweeps,
                    fraction=rng.choice([1.0, 0.5, 0.25]),
                )
            )
        elif kind == 1:
            accesses.append(
                StridedAccess(
                    name,
                    block_bytes=rng.choice([64, 128, 256]),
                    is_write=rng.random() < 0.3,
                    sweeps=sweeps,
                )
            )
        elif kind == 2:
            accesses.append(
                WholeArrayAccess(
                    name,
                    is_write=rng.random() < 0.3,
                    sweeps=sweeps,
                    fraction=rng.choice([1.0, 0.7]),
                )
            )
        else:
            accesses.append(BoundaryAccess(name, units=rng.choice([2, 4])))
    if rng.random() < 0.3:
        accesses.append(
            InstructionStream(footprint_bytes=rng.choice([256, 512, 1024]))
        )
    return tuple(accesses)


def build_program(seed: int) -> tuple[Program, MachineConfig]:
    rng = random.Random(seed)
    num_cpus = rng.choice([1, 2, 4])
    config = machine(num_cpus)
    arrays = tuple(
        ArrayDecl(f"a{i}", rng.randint(1, 8) * config.page_size)
        for i in range(rng.randint(1, 2))
    )
    names = [a.name for a in arrays]
    loops = tuple(
        Loop(
            name=f"l{i}",
            kind=rng.choice([LoopKind.PARALLEL, LoopKind.SEQUENTIAL]),
            accesses=build_accesses(rng, names),
        )
        for i in range(rng.randint(1, 2))
    )
    program = Program("prop", arrays, (Phase("steady", loops),))
    return program, config


# ---------------------------------------------------------------------------
# Brute-force ground truth from the trace generator


def brute_force_lines(loop, schedule, layout, config, profile):
    """Per-CPU line -> (refs, written, instr) by enumerating every address."""
    line = config.l2.line_size
    per_cpu = []
    for trace in loop_traces(loop, schedule, layout, config, profile):
        counts: dict[int, list] = {}
        for addr, flag in zip(trace.addrs.tolist(), trace.flags.tolist()):
            laddr = (addr // line) * line
            entry = counts.setdefault(laddr, [0, False, False])
            entry[0] += 1
            entry[1] = entry[1] or bool(flag & FLAG_WRITE)
            entry[2] = entry[2] or bool(flag & FLAG_INSTR)
        per_cpu.append(counts)
    return per_cpu


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_symbolic_lines_match_enumerated_traces(seed):
    """Same footprint, same per-line reference counts, same flags."""
    program, config = build_program(seed)
    layout = layout_arrays(
        program.arrays, config.l2.line_size, config.l1d.size
    )
    profile = SimProfile()
    for phase in program.phases:
        for loop in phase.loops:
            schedule = schedule_loop(loop, config.num_cpus)
            symbolic = loop_line_touches(
                loop, schedule, layout, config, profile
            )
            brute = brute_force_lines(loop, schedule, layout, config, profile)
            for cpu in range(config.num_cpus):
                assert set(symbolic[cpu]) == set(brute[cpu])
                for laddr, touch in symbolic[cpu].items():
                    refs, written, instr = brute[cpu][laddr]
                    assert touch.refs == refs, (loop.name, cpu, laddr)
                    assert touch.written == written
                    assert touch.instr == instr
                    assert 1 <= touch.visits <= touch.refs


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_verifier_matches_brute_force_page_enumeration(seed):
    """verify_plan's overflow bins == enumerating pages from real traces.

    A random (deliberately skewed) color plan is applied to both sides:
    the verifier works from progressions, the oracle from the materialized
    address stream; the sets of overflowing (cpu, color, line-index) bins
    and their page populations must be identical.
    """
    program, config = build_program(seed)
    rng = random.Random(seed + 1)
    layout = layout_arrays(
        program.arrays, config.l2.line_size, config.l1d.size
    )
    profile = SimProfile()
    image = program_image(
        program, layout, config, config.num_cpus, profile, occurrence=1
    )

    psz = config.page_size
    line = config.l2.line_size
    num_colors = config.num_colors
    assoc = config.l2.associativity
    all_pages = set()
    for name in layout.bases:
        all_pages.update(layout.pages(name, psz))
    # Skewed random plan: few colors, so overflows actually happen.
    plan = StaticPlan(
        policy="random",
        num_colors=num_colors,
        colors={
            vpage: rng.randrange(min(3, num_colors)) for vpage in all_pages
        },
    )

    verification = verify_plan(image, plan)

    # Oracle: cycle-wide per-CPU occupancy from enumerated addresses.
    oracle: dict[int, dict[tuple[int, int], set[int]]] = {
        cpu: {} for cpu in range(config.num_cpus)
    }
    for phase in program.phases:
        for loop in phase.loops:
            schedule = schedule_loop(loop, config.num_cpus)
            traces = loop_traces(loop, schedule, layout, config, profile)
            for cpu, trace in enumerate(traces):
                bins = oracle[cpu]
                for addr in trace.addrs.tolist():
                    laddr = (addr // line) * line
                    vpage = laddr // psz
                    k = (laddr % psz) // line
                    color = plan.color_of(vpage)
                    bins.setdefault((color, k), set()).add(vpage)
    expected = {
        (cpu, color, k): frozenset(pages)
        for cpu, bins in oracle.items()
        for (color, k), pages in bins.items()
        if len(pages) > assoc
    }
    got = {
        (w.cpu, w.color, w.line_index): frozenset(w.pages)
        for w in verification.witnesses
    }
    if len(expected) <= 32:  # below the witness cap: exact equality
        assert got == expected
    else:
        assert set(got) <= set(expected)
    assert verification.conflict_free == (not expected)
    max_occ = max(
        (len(pages) for bins in oracle.values() for pages in bins.values()),
        default=0,
    )
    assert verification.max_occupancy == max_occ


@settings(max_examples=50, deadline=None)
@given(
    start=st.integers(0, 1 << 20),
    step=st.integers(1, 512),
    count=st.integers(0, 200),
    lo=st.integers(0, 1 << 21),
    span=st.integers(0, 4096),
)
def test_progression_counts_match_enumeration(start, step, count, lo, span):
    prog = Progression(start=start, step=step, count=count)
    addrs = [start + step * k for k in range(count)]
    assert prog.count_below(lo) == sum(a < lo for a in addrs)
    assert prog.count_in(lo, lo + span) == sum(lo <= a < lo + span for a in addrs)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_page_coloring_plan_is_pure_modulo(seed):
    _, config = build_program(seed)
    rng = random.Random(seed)
    plan = StaticPlan(policy="page_coloring", num_colors=config.num_colors)
    for _ in range(32):
        vpage = rng.randrange(1 << 24)
        assert plan.color_of(vpage) == vpage % config.num_colors
