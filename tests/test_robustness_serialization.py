"""Round-trip tests: every robustness artifact rehydrates byte-identically.

The campaign harness persists results with their degradation reports and
fault plans; a resumed campaign must see exactly what the killed one
computed.  These tests pin the ``to_dict``/``from_dict`` contracts and
the :class:`ResultStore` pickle path end to end.
"""

import pytest

from repro.harness.store import ResultStore, task_fingerprint
from repro.robustness.degradation import DegradationReport
from repro.robustness.faults import FaultPlan


class TestFaultPlanRoundTrip:
    def test_default_plan(self):
        plan = FaultPlan()
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        assert not plan.active

    def test_fully_loaded_plan(self):
        plan = FaultPlan(
            seed=13,
            pressure=0.6,
            pressure_color_skew=0.9,
            pressure_period=3,
            release_fraction=0.25,
            hint_loss=0.1,
            alloc_failure_rate=0.05,
            race_storm=2,
        )
        rehydrated = FaultPlan.from_dict(plan.to_dict())
        assert rehydrated == plan
        assert rehydrated.to_dict() == plan.to_dict()
        assert rehydrated.active

    def test_dict_is_json_safe(self):
        import json

        payload = FaultPlan(seed=1, pressure=0.5).to_dict()
        assert json.loads(json.dumps(payload)) == payload


class TestDegradationReportRoundTrip:
    def _loaded_report(self) -> DegradationReport:
        return DegradationReport(
            reclaims=7,
            watchdog_trips=1,
            aborted_recolor_steps=2,
            forced_alloc_failures=3,
            dropped_hints=4,
            pressure_events=5,
            frames_seized=60,
            frames_released=40,
            frames_revoked=32,
            frames_restored=32,
            revocation_shortfall=1,
            adaptive_replans=2,
            replan_migrations=17,
            aborted_replans=1,
            fallback_distance_histogram={0: 100, 1: 8, 4: 2},
            capacity_timeline=[(0, 64, 30), (1, 48, 10), (2, 64, 26)],
            invariant_checks=9,
            events=[{"kind": "churn", "beat": 1, "op": "revoke"}],
        )

    def test_round_trip_is_byte_identical(self):
        report = self._loaded_report()
        rehydrated = DegradationReport.from_dict(report.to_dict())
        assert rehydrated == report
        assert rehydrated.to_dict() == report.to_dict()

    def test_capacity_timeline_rows_come_back_as_tuples(self):
        report = self._loaded_report()
        rehydrated = DegradationReport.from_dict(report.to_dict())
        assert rehydrated.capacity_timeline == report.capacity_timeline
        assert all(
            isinstance(row, tuple) for row in rehydrated.capacity_timeline
        )

    def test_histogram_keys_come_back_as_ints(self):
        rehydrated = DegradationReport.from_dict(
            self._loaded_report().to_dict()
        )
        assert all(
            isinstance(k, int)
            for k in rehydrated.fallback_distance_histogram
        )

    def test_derived_fields_dropped_on_rehydration(self):
        report = self._loaded_report()
        payload = report.to_dict()
        assert payload["fallback_allocations"] == report.fallback_allocations
        assert payload["total_events"] == report.total_events
        # from_dict must tolerate (and ignore) the derived keys.
        assert DegradationReport.from_dict(payload) == report

    def test_empty_report_round_trips(self):
        report = DegradationReport()
        assert DegradationReport.from_dict(report.to_dict()) == report

    def test_dict_is_json_safe(self):
        import json

        payload = self._loaded_report().to_dict()
        assert json.loads(json.dumps(payload)) == payload


class TestResultStoreRehydration:
    @pytest.fixture(scope="class")
    def churn_result(self):
        """One real run with churn + faults so every field is populated."""
        from repro.machine.config import sgi_base
        from repro.scenarios import compile_churn, preset
        from repro.sim.engine import EngineOptions, run_benchmark
        from repro.sim.tracegen import SimProfile

        schedule = compile_churn(preset("smoke"))
        options = EngineOptions(
            policy="page_coloring",
            cdpc=True,
            cdpc_delivery="madvise",
            profile=SimProfile.fast(),
            churn=schedule,
            epochs=schedule.horizon + 2,
            fault_plan=FaultPlan(seed=2, hint_loss=0.05),
        )
        return run_benchmark("fpppp", sgi_base(2).scaled(4), options)

    def test_run_populates_churn_fields(self, churn_result):
        degradation = churn_result.degradation
        assert degradation is not None
        assert degradation.frames_revoked > 0
        assert degradation.capacity_timeline
        assert degradation.dropped_hints > 0

    def test_store_round_trip_is_byte_identical(self, churn_result, tmp_path):
        store = ResultStore(tmp_path / "store")
        fingerprint = task_fingerprint(("fpppp", "churn-roundtrip"))
        store.put(fingerprint, churn_result, label="fpppp")
        loaded = store.get(fingerprint)
        assert loaded is not None
        assert loaded.to_dict() == churn_result.to_dict()
        assert loaded.degradation == churn_result.degradation

    def test_degradation_survives_dict_round_trip(self, churn_result):
        degradation = churn_result.degradation
        assert (
            DegradationReport.from_dict(degradation.to_dict()) == degradation
        )
