"""Integration tests for the execution engine."""

import pytest

from repro.compiler.ir import (
    ArrayDecl,
    Loop,
    LoopKind,
    PartitionedAccess,
    Phase,
    Program,
)
from repro.machine.config import CacheConfig, MachineConfig
from repro.machine.stats import MissKind
from repro.sim.engine import EngineOptions, run_benchmark, run_program
from repro.sim.tracegen import SimProfile

from tests.conftest import make_stencil_program


def tiny_machine(num_cpus=2) -> MachineConfig:
    return MachineConfig(
        num_cpus=num_cpus,
        page_size=256,
        l1d=CacheConfig(1024, 64, 2),
        l1i=CacheConfig(1024, 64, 2),
        l2=CacheConfig(8192, 64, 1),  # 32 colors
    )


def aligned_conflict_program(config, num_arrays=4):
    """Arrays sized exactly one color cycle: the tomcatv pathology.

    Initialization is sequential (array by array), so bin hopping's
    fault-order coloring reproduces the virtual-address alignment too.
    """
    from repro.compiler.ir import InitOrder

    pages = config.num_colors
    size = pages * config.page_size
    names = tuple(f"a{i}" for i in range(num_arrays))
    arrays = tuple(ArrayDecl(n, size) for n in names)
    loop = Loop(
        "sweep",
        LoopKind.PARALLEL,
        tuple(
            PartitionedAccess(n, units=pages, is_write=(i == 0))
            for i, n in enumerate(names)
        ),
    )
    return Program("aligned", arrays, (Phase("steady", (loop,), occurrences=2),),
                   init_order=InitOrder.SEQUENTIAL)


class TestBasicExecution:
    def test_run_produces_time_and_stats(self):
        config = tiny_machine(2)
        program = make_stencil_program(config.page_size)
        result = run_program(program, config)
        assert result.wall_ns > 0
        assert result.stats.total_instructions() > 0
        assert result.num_cpus == 2
        assert result.init_ns > 0

    def test_parallel_loop_uses_all_cpus(self):
        config = tiny_machine(4)
        program = make_stencil_program(config.page_size)
        result = run_program(program, config)
        for cpu in result.stats.cpus:
            assert cpu.instructions > 0

    def test_more_cpus_run_faster(self):
        program1 = make_stencil_program(256, num_arrays=4, pages=32)
        r1 = run_program(program1, tiny_machine(1))
        r4 = run_program(program1, tiny_machine(4))
        assert r4.wall_ns < r1.wall_ns

    def test_phase_weighting(self):
        config = tiny_machine(2)
        program = make_stencil_program(config.page_size)  # occurrences=2
        result = run_program(program, config)
        assert len(result.phases) == 1
        phase = result.phases[0]
        assert result.wall_ns == pytest.approx(phase.wall_ns * 2)

    def test_page_faults_only_during_init(self):
        config = tiny_machine(2)
        program = make_stencil_program(config.page_size)
        options = EngineOptions()
        from repro.sim.engine import _Simulation

        sim = _Simulation(program, config, options)
        sim.run_init()
        faults_after_init = sim.vm.faults
        sim.run_phase(program.phases[0], record=False)
        assert sim.vm.faults == faults_after_init


class TestOverheadAccounting:
    def test_sequential_loop_charges_slaves(self):
        config = tiny_machine(4)
        arrays = (ArrayDecl("a", 4096),)
        loop = Loop("seq", LoopKind.SEQUENTIAL, (PartitionedAccess("a", units=16),))
        program = Program("p", arrays, (Phase("ph", (loop,)),))
        result = run_program(program, config)
        for cpu in range(1, 4):
            assert result.stats.cpus[cpu].overhead_ns["sequential"] > 0
        assert result.stats.cpus[0].overhead_ns["sequential"] == 0

    def test_suppressed_loop_charges_suppressed_category(self):
        config = tiny_machine(4)
        arrays = (ArrayDecl("a", 4096),)
        loop = Loop("sup", LoopKind.SUPPRESSED, (PartitionedAccess("a", units=16),))
        program = Program("p", arrays, (Phase("ph", (loop,)),))
        result = run_program(program, config)
        assert result.stats.cpus[1].overhead_ns["suppressed"] > 0

    def test_load_imbalance_from_blocked_schedule(self):
        from repro.common import Partitioning

        config = tiny_machine(4)
        arrays = (ArrayDecl("a", 3 * 4096),)
        loop = Loop(
            "imb",
            LoopKind.PARALLEL,
            (PartitionedAccess("a", units=3, partitioning=Partitioning.BLOCKED),),
        )
        program = Program("p", arrays, (Phase("ph", (loop,)),))
        result = run_program(program, config)
        # CPU 3 executes nothing and waits at the barrier.
        assert result.stats.cpus[3].overhead_ns["load_imbalance"] > 0

    def test_synchronization_cost_per_parallel_loop(self):
        config = tiny_machine(2)
        program = make_stencil_program(config.page_size)
        result = run_program(program, config)
        assert result.stats.cpus[0].overhead_ns["synchronization"] > 0

    def test_sequential_fraction_adds_master_time(self):
        config = tiny_machine(2)
        base_program = make_stencil_program(config.page_size)
        import dataclasses

        with_seq = dataclasses.replace(base_program, sequential_fraction=0.5)
        base = run_program(base_program, config)
        seq = run_program(with_seq, config)
        assert seq.stats.cpus[1].overhead_ns["sequential"] > 0
        assert seq.wall_ns > base.wall_ns

    def test_kernel_overhead_from_tlb_misses(self):
        config = tiny_machine(2)
        # 160 pages far exceed the 64-entry TLB, so the measured phase
        # keeps missing even after the warmup pass.
        program = make_stencil_program(config.page_size, num_arrays=4, pages=40)
        result = run_program(program, config)
        assert result.stats.cpus[0].tlb_misses > 0
        assert result.stats.cpus[0].overhead_ns["kernel"] > 0


class TestPolicyEffects:
    def test_cdpc_eliminates_aligned_conflicts(self):
        config = tiny_machine(4)
        program = aligned_conflict_program(config)
        base = run_program(program, config, EngineOptions(policy="page_coloring"))
        cdpc = run_program(
            program, config, EngineOptions(policy="page_coloring", cdpc=True)
        )
        assert base.misses(MissKind.CONFLICT) > 0
        assert cdpc.misses(MissKind.CONFLICT) < base.misses(MissKind.CONFLICT) / 4
        assert cdpc.wall_ns < base.wall_ns

    def test_cdpc_touch_delivery_on_bin_hopping(self):
        config = tiny_machine(4)
        program = aligned_conflict_program(config)
        base = run_program(program, config, EngineOptions(policy="bin_hopping"))
        cdpc = run_program(
            program, config, EngineOptions(policy="bin_hopping", cdpc=True)
        )
        assert cdpc.misses(MissKind.CONFLICT) <= base.misses(MissKind.CONFLICT)

    def test_policies_produce_different_mappings(self):
        config = tiny_machine(2)
        program = make_stencil_program(config.page_size)
        pc = run_program(program, config, EngineOptions(policy="page_coloring"))
        bh = run_program(program, config, EngineOptions(policy="bin_hopping"))
        assert pc.policy == "page_coloring"
        assert bh.policy == "bin_hopping"

    def test_memory_pressure_lowers_hint_honor_rate(self):
        config = tiny_machine(4)
        program = aligned_conflict_program(config)
        relaxed = run_program(
            program, config, EngineOptions(policy="page_coloring", cdpc=True)
        )
        pressured = run_program(
            program,
            config,
            EngineOptions(policy="page_coloring", cdpc=True, memory_pressure=0.5),
        )
        assert relaxed.hint_honor_rate == pytest.approx(1.0)
        assert pressured.hint_honor_rate < 1.0

    def test_unknown_policy_rejected(self):
        config = tiny_machine(2)
        program = make_stencil_program(config.page_size)
        with pytest.raises(ValueError):
            run_program(program, config, EngineOptions(policy="fifo"))

    def test_unknown_delivery_rejected(self):
        config = tiny_machine(2)
        program = make_stencil_program(config.page_size)
        with pytest.raises(ValueError):
            run_program(
                program,
                config,
                EngineOptions(cdpc=True, cdpc_delivery="carrier_pigeon"),
            )


class TestRunBenchmark:
    def test_runs_scaled_workload(self):
        from repro.machine.config import sgi_base

        config = sgi_base(2).scaled(16)
        result = run_benchmark(
            "fpppp", config, profile=SimProfile.fast()
        )
        assert result.workload == "fpppp"
        assert result.wall_ns > 0

    def test_option_overrides_merge(self):
        from repro.machine.config import sgi_base

        config = sgi_base(2).scaled(16)
        options = EngineOptions(profile=SimProfile.fast())
        result = run_benchmark("fpppp", config, options, policy="bin_hopping")
        assert result.policy == "bin_hopping"

    def test_fpppp_instruction_bound(self):
        # Figure 2: fpppp is limited by instruction misses that hit in the
        # external cache and puts (almost) no load on the shared bus.
        from repro.machine.config import sgi_base

        config = sgi_base(2).scaled(16)
        result = run_benchmark("fpppp", config, profile=SimProfile.fast())
        stats = result.stats.cpus[0]
        assert stats.l1i_misses > 0
        assert result.bus_utilization() < 0.2
