"""Coverage for reverse-direction partitions through the full stack.

Section 5.1 supports both forward partitions (iterations assigned from
processor 0 up) and reverse partitions (from processor p-1 down).  These
tests drive a reverse-partitioned program through scheduling, trace
generation and CDPC hint generation.
"""

from repro.common import Direction
from repro.compiler.ir import (
    ArrayDecl,
    Loop,
    LoopKind,
    PartitionedAccess,
    Phase,
    Program,
)
from repro.compiler.padding import layout_arrays
from repro.compiler.parallelize import schedule_loop
from repro.compiler.summaries import extract_summary
from repro.core.coloring import generate_page_colors
from repro.machine.config import CacheConfig, MachineConfig
from repro.sim.engine import EngineOptions, run_program
from repro.sim.tracegen import SimProfile, loop_traces


def machine(num_cpus=4) -> MachineConfig:
    return MachineConfig(
        num_cpus=num_cpus,
        page_size=256,
        l1d=CacheConfig(1024, 64, 2),
        l1i=CacheConfig(1024, 64, 2),
        l2=CacheConfig(8192, 64, 1),
    )


def reverse_program(page_size, pages=16):
    arrays = (ArrayDecl("a", pages * page_size), ArrayDecl("b", pages * page_size))
    loop = Loop(
        "rev",
        LoopKind.PARALLEL,
        (
            PartitionedAccess("a", units=pages, direction=Direction.REVERSE,
                              is_write=True),
            PartitionedAccess("b", units=pages, direction=Direction.REVERSE),
        ),
    )
    return Program("reverse", arrays, (Phase("steady", (loop,)),))


class TestReversePartitions:
    def test_schedule_assigns_low_addresses_to_high_cpus(self):
        program = reverse_program(256)
        loop = program.phases[0].loops[0]
        schedule = schedule_loop(loop, 4)
        assert schedule.ranges[0] == (12, 16)  # CPU 0 gets the top chunk
        assert schedule.ranges[3] == (0, 4)

    def test_traces_match_reverse_schedule(self):
        config = machine(4)
        program = reverse_program(config.page_size)
        layout = layout_arrays(program.arrays, 64, config.l1d.size)
        loop = program.phases[0].loops[0]
        traces = loop_traces(
            loop, schedule_loop(loop, 4), layout, config, SimProfile()
        )
        base = layout.base_of("a")
        size = layout.sizes["a"]
        a_addrs = traces[3].addrs[traces[3].addrs < base + size]
        # CPU 3 owns the first quarter of the array under REVERSE.
        assert a_addrs.max() < base + size // 4

    def test_segments_reflect_reverse_ownership(self):
        config = machine(4)
        program = reverse_program(config.page_size)
        layout = layout_arrays(program.arrays, 64, config.l1d.size)
        summary = extract_summary(program, layout)
        coloring = generate_page_colors(summary, config.page_size, 32, 4)
        first_page_owner = next(
            s.cpus for s in coloring.segments
            if s.array == "a" and s.start_page == layout.base_of("a") // 256
        )
        assert first_page_owner == frozenset({3})

    def test_full_run_conflict_free_under_cdpc(self):
        config = machine(4)
        program = reverse_program(config.page_size, pages=32)
        base = run_program(program, config, EngineOptions())
        cdpc = run_program(program, config, EngineOptions(cdpc=True))
        assert cdpc.replacement_misses() <= base.replacement_misses()
        assert cdpc.wall_ns <= base.wall_ns * 1.05
