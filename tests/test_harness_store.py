"""Tests for the crash-consistent result store and task fingerprints."""

import dataclasses
import json
import pickle

from repro.harness.report import FailureKind
from repro.harness.retry import RetryPolicy
from repro.harness.store import ResultStore, task_fingerprint
from repro.machine.config import sgi_base
from repro.sim.engine import EngineOptions
from repro.sim.tracegen import SimProfile


def _task(**overrides):
    config = sgi_base(overrides.pop("cpus", 2)).scaled(16)
    options = EngineOptions(profile=SimProfile.fast(), **overrides)
    return ("fpppp", config, options)


class TestTaskFingerprint:
    def test_stable_for_identical_tasks(self):
        assert task_fingerprint(_task()) == task_fingerprint(_task())

    def test_differs_across_every_dimension(self):
        base = task_fingerprint(_task())
        assert task_fingerprint(("swim",) + _task()[1:]) != base
        assert task_fingerprint(_task(cpus=4)) != base
        assert task_fingerprint(_task(policy="bin_hopping")) != base
        assert task_fingerprint(_task(cdpc=True)) != base
        assert task_fingerprint(_task(seed=7)) != base

    def test_covers_nested_profile(self):
        # The profile is a nested frozen dataclass; its fields must land
        # in the digest like the trace cache's keys.
        workload, config, options = _task()
        tweaked = dataclasses.replace(
            options, profile=dataclasses.replace(options.profile, sweep_limit=2.0)
        )
        assert task_fingerprint((workload, config, tweaked)) != task_fingerprint(
            (workload, config, options)
        )

    def test_is_a_hex_digest(self):
        fingerprint = task_fingerprint(_task())
        assert len(fingerprint) == 64
        int(fingerprint, 16)  # raises if not hex


class TestResultStore:
    def test_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put("abc", {"x": 1}, label="demo")
        assert store.get("abc") == {"x": 1}
        assert "abc" in store
        assert len(store) == 1

    def test_missing_returns_none(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert store.get("nope") is None

    def test_no_tmp_leftovers_after_put(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        for i in range(5):
            store.put(f"fp{i}", list(range(i)))
        assert list(store.results_dir.glob("*.tmp")) == []

    def test_corrupt_entry_self_heals(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put("abc", [1, 2, 3])
        (store.results_dir / "abc.pkl").write_bytes(b"\x80garbage")
        assert store.get("abc") is None  # dropped, not raised
        assert "abc" not in store  # file removed → task re-runs

    def test_manifest_journal_lines_and_reconciliation(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put("abc", 1, label="first", attempts=2)
        lines = [json.loads(line)
                 for line in store.manifest_path.read_text().splitlines()]
        assert lines == [{"fingerprint": "abc", "label": "first", "attempts": 2}]
        assert store.manifest()["entries"]["abc"] == {
            "label": "first", "attempts": 2,
        }
        # A payload the manifest never saw (crash between rename and
        # manifest update) is adopted on the next read.
        with open(store.results_dir / "orphan.pkl", "wb") as handle:
            pickle.dump(42, handle)
        reconciled = store.manifest()
        assert "orphan" in reconciled["entries"]
        # A manifest entry whose payload vanished is dropped.
        (store.results_dir / "abc.pkl").unlink()
        assert "abc" not in store.manifest()["entries"]

    def test_interrupted_write_leftovers_swept_on_open(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        (store.results_dir / "abc.123.tmp").write_bytes(b"partial")
        reopened = ResultStore(tmp_path / "store")
        assert list(reopened.results_dir.glob("*.tmp")) == []

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put("abc", 1)
        store.clear()
        assert len(store) == 0
        assert store.get("abc") is None


class TestTornManifestJournal:
    """SIGKILL mid-append tears the trailing journal line; the store must
    self-heal at *every* possible truncation point."""

    def _store_with_entries(self, root):
        store = ResultStore(root)
        for index in range(4):
            store.put(f"fp{index}", {"value": index},
                      label=f"run[{index}]", attempts=index + 1)
        return store

    def test_truncation_at_every_byte_offset_never_raises(self, tmp_path):
        store = self._store_with_entries(tmp_path / "store")
        journal = store.manifest_path.read_bytes()
        durable = set(store.fingerprints())
        for offset in range(len(journal) + 1):
            store.manifest_path.write_bytes(journal[:offset])
            manifest = store.manifest()  # must not raise at any offset
            # Payloads are the source of truth: every durable entry is
            # present regardless of how much journal survived.
            assert set(manifest["entries"]) == durable, f"offset {offset}"
        # Fully restored journal recovers full metadata too.
        store.manifest_path.write_bytes(journal)
        assert store.manifest()["entries"]["fp3"] == {
            "label": "run[3]", "attempts": 4,
        }

    def test_torn_trailing_line_drops_metadata_not_entry(self, tmp_path):
        store = self._store_with_entries(tmp_path / "store")
        journal = store.manifest_path.read_bytes()
        # Cut mid-way through the last line (not at a newline boundary).
        last_line_start = journal.rstrip(b"\n").rfind(b"\n") + 1
        store.manifest_path.write_bytes(
            journal[: last_line_start + (len(journal) - last_line_start) // 2]
        )
        entries = store.manifest()["entries"]
        assert entries["fp3"] == {"label": "", "attempts": 0}  # stub
        assert entries["fp2"] == {"label": "run[2]", "attempts": 3}

    def test_append_after_torn_line_still_parses(self, tmp_path):
        store = self._store_with_entries(tmp_path / "store")
        with open(store.manifest_path, "ab") as handle:
            handle.write(b'{"fingerprint": "fp9", "label": "to')  # torn, no newline
        store.put("fp4", 4, label="after-tear", attempts=1)
        entries = store.manifest()["entries"]
        assert entries["fp4"] == {"label": "after-tear", "attempts": 1}

    def test_legacy_whole_file_manifest_upgrades_in_place(self, tmp_path):
        store = self._store_with_entries(tmp_path / "store")
        legacy = {
            "version": 1,
            "entries": {fp: {"label": f"legacy-{fp}", "attempts": 7}
                        for fp in store.fingerprints()},
        }
        store.manifest_path.write_text(json.dumps(legacy, indent=2) + "\n")
        assert store.manifest()["entries"]["fp0"] == {
            "label": "legacy-fp0", "attempts": 7,
        }
        # The first append after the upgrade rewrites the file as a journal.
        store.put("fp5", 5, label="post-upgrade", attempts=1)
        first = store.manifest_path.read_text().lstrip()[0]
        assert first != "{" or first == "{"  # journal lines, parsed below
        lines = [json.loads(line)
                 for line in store.manifest_path.read_text().splitlines()]
        by_fp = {line["fingerprint"]: line for line in lines}
        assert by_fp["fp0"]["label"] == "legacy-fp0"
        assert by_fp["fp5"]["label"] == "post-upgrade"


class TestRetryPolicy:
    def test_defaults_retry_only_transient_kinds(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(FailureKind.CRASH, 1)
        assert policy.should_retry(FailureKind.TIMEOUT, 2)
        assert not policy.should_retry(FailureKind.TIMEOUT, 3)
        assert not policy.should_retry(FailureKind.EXCEPTION, 1)
        assert not policy.should_retry(FailureKind.CANCELLED, 1)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            backoff_s=0.1, backoff_factor=2.0, max_backoff_s=0.3, jitter=0.0
        )
        assert policy.delay_s(1) == 0.1
        assert policy.delay_s(2) == 0.2
        assert policy.delay_s(3) == 0.3  # capped
        assert policy.delay_s(9) == 0.3

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_s=1.0, jitter=0.25, max_backoff_s=10.0)
        first = policy.delay_s(1, "taskA")
        assert first == policy.delay_s(1, "taskA")  # same token → same delay
        assert 0.75 <= first <= 1.25
        assert policy.delay_s(1, "taskB") != first

    def test_validation(self):
        import pytest

        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
