"""Tests for fault injection and graceful degradation."""

import json

import pytest

from repro.machine.config import CacheConfig, MachineConfig
from repro.machine.memory_system import MemorySystem
from repro.osmodel.physmem import PhysicalMemory
from repro.osmodel.policies import PageColoringPolicy
from repro.osmodel.vm import VirtualMemory
from repro.robustness.degradation import (
    ColdPageReclaimer,
    DegradationLog,
    DegradationReport,
)
from repro.robustness.faults import FaultInjector, FaultPlan
from repro.sim.engine import EngineOptions, run_program
from repro.sim.tracegen import SimProfile

from tests.conftest import make_two_array_program


def machine(num_cpus=2) -> MachineConfig:
    return MachineConfig(
        num_cpus=num_cpus,
        page_size=256,
        l1d=CacheConfig(512, 64, 2),
        l1i=CacheConfig(512, 64, 2),
        l2=CacheConfig(4096, 64, 1),  # 16 colors
    )


class TestFaultPlan:
    def test_defaults_are_inactive(self):
        assert not FaultPlan().active

    def test_each_fault_class_activates(self):
        assert FaultPlan(pressure=0.5).active
        assert FaultPlan(hint_loss=0.1).active
        assert FaultPlan(alloc_failure_rate=0.01).active
        assert FaultPlan(race_storm=2).active

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(pressure=1.5)
        with pytest.raises(ValueError):
            FaultPlan(hint_loss=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(pressure_period=0)
        with pytest.raises(ValueError):
            FaultPlan(race_storm=-1)

    def test_to_dict_roundtrip(self):
        plan = FaultPlan(seed=3, pressure=0.4, hint_loss=0.2)
        assert FaultPlan(**plan.to_dict()) == plan


class TestFaultInjector:
    def test_hint_filtering_drops_fraction(self):
        physmem = PhysicalMemory(64, 16)
        injector = FaultInjector(FaultPlan(seed=1, hint_loss=0.5), physmem, 16)
        hints = {vpage: vpage % 16 for vpage in range(200)}
        kept = injector.filter_hints(hints)
        assert 0 < len(kept) < 200
        assert injector.hints_dropped == 200 - len(kept)
        assert all(hints[v] == c for v, c in kept.items())

    def test_hint_filtering_deterministic(self):
        def run(seed):
            physmem = PhysicalMemory(64, 16)
            injector = FaultInjector(FaultPlan(seed=seed, hint_loss=0.3), physmem, 16)
            return injector.filter_hints({v: v % 16 for v in range(100)})

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_touch_order_filtering_preserves_order(self):
        physmem = PhysicalMemory(64, 16)
        injector = FaultInjector(FaultPlan(seed=2, hint_loss=0.4), physmem, 16)
        order = list(range(100))
        kept = injector.filter_touch_order(order)
        assert kept == sorted(kept)
        assert 0 < len(kept) < 100

    def test_zero_loss_keeps_everything(self):
        physmem = PhysicalMemory(64, 16)
        injector = FaultInjector(FaultPlan(seed=0), physmem, 16)
        hints = {1: 2, 3: 4}
        assert injector.filter_hints(hints) == hints
        assert injector.filter_touch_order([5, 6]) == [5, 6]

    def test_initial_pressure_seizes_frames(self):
        physmem = PhysicalMemory(160, 16)
        injector = FaultInjector(FaultPlan(seed=0, pressure=0.5), physmem, 16)
        injector.initial_pressure()
        assert physmem.free_frames() == 80
        assert injector.frames_seized == 80

    def test_pressure_is_color_skewed(self):
        physmem = PhysicalMemory(320, 16)
        injector = FaultInjector(
            FaultPlan(seed=0, pressure=0.5, pressure_color_skew=1.0), physmem, 16
        )
        injector.initial_pressure()
        held_colors = {physmem.color_of(f) for f in physmem.held_frames()}
        assert held_colors == injector.skewed_colors
        assert len(held_colors) == 8

    def test_phase_boundaries_oscillate(self):
        physmem = PhysicalMemory(160, 16)
        plan = FaultPlan(seed=0, pressure=0.5, pressure_period=1,
                         release_fraction=0.5)
        injector = FaultInjector(plan, physmem, 16)
        injector.initial_pressure()
        seized_after_init = injector.frames_seized
        injector.on_phase_boundary()  # beat 1 -> release
        assert injector.frames_released > 0
        injector.on_phase_boundary()  # beat 0 -> seize again
        assert injector.frames_seized > seized_after_init

    def test_race_storm_amplifies_concurrency(self):
        physmem = PhysicalMemory(64, 16)
        injector = FaultInjector(FaultPlan(seed=0, race_storm=4), physmem, 16)
        assert injector.fault_concurrency(2) == 6
        no_storm = FaultInjector(FaultPlan(seed=0), physmem, 16)
        assert no_storm.fault_concurrency(2) == 2

    def test_alloc_failure_hook_installed(self):
        physmem = PhysicalMemory(64, 16)
        FaultInjector(FaultPlan(seed=0, alloc_failure_rate=1.0), physmem, 16)
        assert physmem.fail_hook is not None


class TestColdPageReclaimer:
    def test_evicts_coldest_mapped_page(self):
        config = machine()
        vm = VirtualMemory(config, PageColoringPolicy(config.num_colors))
        ms = MemorySystem(config)
        for vpage in range(4):
            vm.ensure_mapped(vpage)
        # Heat up pages 0-2; page 3 stays cold.
        for vpage in range(3):
            addr = vpage * config.page_size
            ms.access(0, 0.0, addr, vm.translate(addr), is_write=False)
        cold_frame = vm.page_table.frame_of(3)
        evicted = []
        reclaimer = ColdPageReclaimer(vm, ms, on_evict=lambda v, f: evicted.append(v))
        frame = reclaimer.reclaim(vm.physmem, None)
        assert frame == cold_frame
        assert evicted == [3]
        assert not vm.page_table.is_mapped(3)
        # The freed frame is immediately claimable.
        assert frame in [f for q in vm.physmem.free_lists() for f in q]

    def test_empty_page_table_returns_none(self):
        config = machine()
        vm = VirtualMemory(config, PageColoringPolicy(config.num_colors))
        ms = MemorySystem(config)
        assert ColdPageReclaimer(vm, ms).reclaim(vm.physmem, None) is None


class TestDegradationReport:
    def test_log_counts_and_caps_detail(self):
        log = DegradationLog(max_detailed_events=4)
        for i in range(10):
            log.record("reclaim", {"frame": i})
        assert log.count("reclaim") == 10
        assert len(log.events) == 4
        assert log.total == 10

    def test_collect_reads_physmem_counters(self):
        physmem = PhysicalMemory(16, 8)
        physmem.alloc(preferred_color=0)
        physmem.alloc(preferred_color=0)
        physmem.alloc(preferred_color=0)  # distance-1 fallback
        report = DegradationReport.collect(DegradationLog(), physmem)
        assert report.fallback_distance_histogram == {0: 2, 1: 1}
        assert report.fallback_allocations == 1

    def test_to_dict_is_json_serializable(self):
        report = DegradationReport(reclaims=2, fallback_distance_histogram={0: 5, 3: 1})
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["reclaims"] == 2
        assert payload["fallback_distance_histogram"] == {"0": 5, "3": 1}


@pytest.fixture
def tiny_program(tiny_config):
    return make_two_array_program(tiny_config.page_size, pages_per_array=8)


class TestEngineUnderFaults:
    def options(self, **kw):
        base = dict(
            policy="page_coloring",
            cdpc=True,
            profile=SimProfile.fast(),
            check_invariants=True,
            hint_watchdog=0.5,
        )
        base.update(kw)
        return EngineOptions(**base)

    def test_run_completes_under_combined_faults(self, tiny_config, tiny_program):
        plan = FaultPlan(seed=3, pressure=0.7, hint_loss=0.3,
                         alloc_failure_rate=0.05)
        result = run_program(tiny_program, tiny_config,
                             self.options(fault_plan=plan))
        assert result.wall_ns > 0
        report = result.degradation
        assert report is not None
        assert report.pressure_events > 0
        assert report.frames_seized > 0
        assert report.invariant_checks > 0

    def test_same_seed_reproduces_identical_results(self, tiny_config, tiny_program):
        plan = FaultPlan(seed=11, pressure=0.6, hint_loss=0.2)
        a = run_program(tiny_program, tiny_config, self.options(fault_plan=plan))
        b = run_program(tiny_program, tiny_config, self.options(fault_plan=plan))
        assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
            b.to_dict(), sort_keys=True
        )

    def test_different_seeds_differ(self, tiny_config, tiny_program):
        a = run_program(
            tiny_program, tiny_config,
            self.options(fault_plan=FaultPlan(seed=1, pressure=0.6, hint_loss=0.3)),
        )
        b = run_program(
            tiny_program, tiny_config,
            self.options(fault_plan=FaultPlan(seed=2, pressure=0.6, hint_loss=0.3)),
        )
        assert (
            a.degradation.to_dict() != b.degradation.to_dict()
            or a.wall_ns != b.wall_ns
        )

    def test_fault_free_run_reports_clean_degradation(self, tiny_config, tiny_program):
        result = run_program(tiny_program, tiny_config, self.options())
        report = result.degradation
        assert report.reclaims == 0
        assert report.watchdog_trips == 0
        assert report.dropped_hints == 0
        assert report.pressure_events == 0

    def test_watchdog_trips_under_heavy_pressure(self, tiny_config, tiny_program):
        plan = FaultPlan(seed=5, pressure=0.95, pressure_color_skew=1.0,
                         hint_loss=0.5)
        result = run_program(
            tiny_program, tiny_config,
            self.options(fault_plan=plan, hint_watchdog=0.95),
        )
        assert result.degradation.watchdog_trips == 1

    def test_race_storm_with_bin_hopping(self, tiny_config, tiny_program):
        plan = FaultPlan(seed=4, race_storm=4)
        result = run_program(
            tiny_program, tiny_config,
            self.options(policy="bin_hopping", cdpc=False, hint_watchdog=None,
                         fault_plan=plan, race_seed=4),
        )
        assert result.wall_ns > 0
