"""Diagnostic/LintReport JSON round-trips must be byte-identical.

CI archives lint reports as JSON and diffs them across revisions; any
drift in the serialization (key order, dropped fields, tuple/list
mismatches) silently breaks those diffs.  These tests pin the full cycle
``report -> to_json -> from_json -> to_json`` to byte equality, on
hand-built reports and on real analyzer output.
"""

from __future__ import annotations

import json

import pytest

from repro.checker import lint_workload
from repro.checker.diagnostics import Diagnostic, LintReport, Severity
from repro.machine.config import sgi_base


def sample_report() -> LintReport:
    report = LintReport(program="sample")
    report.extend(
        [
            Diagnostic(
                rule_id="C001",
                severity=Severity.WARNING,
                message="arrays a and b collide",
                loop="main",
                phase="steady",
                array="a",
                fix_hint="pad array a by one line",
                evidence={"pages": [1, 2, 3], "colors": 4},
            ),
            Diagnostic(
                rule_id="R001",
                severity=Severity.ERROR,
                message="cross-processor write overlap",
                loop="update",
            ),
            Diagnostic(
                rule_id="S003",
                severity=Severity.INFO,
                message="plan has conflict witnesses",
                evidence={"data_witnesses": 7},
            ),
        ]
    )
    return report


class TestDiagnosticRoundTrip:
    def test_full_diagnostic_round_trips(self):
        diag = sample_report().diagnostics[0]
        assert Diagnostic.from_dict(diag.to_dict()) == diag

    def test_minimal_diagnostic_round_trips(self):
        diag = Diagnostic(
            rule_id="R002", severity=Severity.WARNING, message="m"
        )
        payload = diag.to_dict()
        # Empty evidence is omitted from the payload entirely...
        assert "evidence" not in payload
        # ...and restored as an (independent) empty dict.
        restored = Diagnostic.from_dict(payload)
        assert restored == diag
        assert restored.evidence == {}

    @pytest.mark.parametrize("severity", list(Severity))
    def test_severity_serializes_by_name(self, severity):
        diag = Diagnostic(rule_id="X", severity=severity, message="m")
        payload = diag.to_dict()
        assert payload["severity"] == severity.name
        assert Diagnostic.from_dict(payload).severity is severity

    def test_round_trip_through_json_text(self):
        diag = sample_report().diagnostics[0]
        restored = Diagnostic.from_dict(json.loads(json.dumps(diag.to_dict())))
        assert restored == diag


class TestLintReportRoundTrip:
    def test_to_json_from_json_is_byte_identical(self):
        report = sample_report()
        text = report.to_json()
        assert LintReport.from_json(text).to_json() == text

    def test_from_dict_recomputes_derived_counts(self):
        report = sample_report()
        payload = report.to_dict()
        assert payload["num_errors"] == 1
        assert payload["num_warnings"] == 1
        # Tamper with the (derived) counts: from_dict must not trust them.
        payload["num_errors"] = 99
        restored = LintReport.from_dict(payload)
        assert restored.to_dict()["num_errors"] == 1

    def test_empty_report_round_trips(self):
        report = LintReport(program="empty")
        text = report.to_json()
        restored = LintReport.from_json(text)
        assert restored.program == "empty"
        assert len(restored) == 0
        assert restored.to_json() == text

    def test_restored_report_preserves_queries(self):
        report = sample_report()
        restored = LintReport.from_json(report.to_json())
        assert [d.rule_id for d in restored.errors()] == ["R001"]
        assert [d.rule_id for d in restored.warnings()] == ["C001"]
        assert restored.max_severity() is Severity.ERROR
        assert not restored.clean

    @pytest.mark.parametrize("name", ["su2cor", "applu", "wave5"])
    def test_real_analyzer_output_round_trips(self, name):
        """End-to-end: reports with live S/C/R evidence stay byte-exact."""
        config = sgi_base(16).scaled(16)
        report = lint_workload(name, config)
        assert len(report) > 0  # these workloads are known non-empty
        text = report.to_json()
        assert LintReport.from_json(text).to_json() == text
