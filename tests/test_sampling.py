"""Access-vector sampled simulation: plans, error bounds, validation."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.machine.config import sgi_base
from repro.sim.engine import EngineOptions, run_benchmark
from repro.sim.tracegen import SimProfile
from repro.sim.windows import (
    ROLE_FORCED,
    ROLE_LEADER,
    ROLE_SKIP,
    ROLE_VALIDATOR,
    ROLE_WARM,
    access_vector_plan,
)

CONFIG = sgi_base(4).scaled(16)
FAST = SimProfile.fast()


class _FakeTrace:
    """Bare-bones stand-in for CpuTrace: addrs/flags/prefetch columns."""

    def __init__(self, addrs, flags, prefetch=None):
        self.addrs = np.asarray(addrs, dtype=np.int64)
        self.flags = np.asarray(flags, dtype=np.uint8)
        self.prefetch = prefetch

    def __len__(self):
        return len(self.addrs)


def make_trace(n, period=64):
    addrs = (np.arange(n) % period) * 8
    return _FakeTrace(addrs, np.zeros(n, dtype=np.uint8))


class TestWindowPlan:
    def test_identical_windows_cluster_with_leader_first(self):
        trace = make_trace(64 * 8)
        plan = access_vector_plan(trace, 64, 32, 256, 16)
        assert plan.num_windows == 8
        assert plan.num_clusters == 1
        assert plan.roles[0] == ROLE_LEADER
        assert plan.roles[1] == ROLE_SKIP
        assert ROLE_WARM in plan.roles
        assert ROLE_VALIDATOR in plan.roles
        assert plan.skippable_windows() > 0
        # The leader precedes every skippable member, so its delta is
        # always recorded before the first replay needs it.
        assert plan.roles.index(ROLE_LEADER) < plan.roles.index(ROLE_SKIP)

    def test_partial_tail_window_is_forced(self):
        trace = make_trace(64 * 2 + 10)
        plan = access_vector_plan(trace, 64, 32, 256, 16)
        assert plan.roles[-1] == ROLE_FORCED
        assert plan.clusters[-1] == -1

    def test_slow_references_force_simulation(self):
        base = make_trace(64 * 2)
        flags = base.flags.copy()
        flags[70] = 3  # write+instruction: slow-path carrier
        plan = access_vector_plan(
            _FakeTrace(base.addrs, flags), 64, 32, 256, 16
        )
        assert plan.roles[1] == ROLE_FORCED

    def test_different_access_vectors_split_clusters(self):
        addrs = np.concatenate(
            [(np.arange(64) % 64) * 8, np.zeros(64, dtype=np.int64)]
        )
        trace = _FakeTrace(addrs, np.zeros(128, dtype=np.uint8))
        plan = access_vector_plan(trace, 64, 32, 256, 16)
        assert plan.num_clusters == 2

    def test_plan_memoized_per_window_size(self):
        trace = make_trace(256)
        first = access_vector_plan(trace, 64, 32, 256, 16)
        assert access_vector_plan(trace, 64, 32, 256, 16) is first
        assert access_vector_plan(trace, 128, 32, 256, 16) is not first


class TestSamplingValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="sampling"):
            run_benchmark(
                "tomcatv", CONFIG, EngineOptions(sampling="random")
            )

    def test_requires_fast_path(self):
        with pytest.raises(ValueError, match="fast_path"):
            run_benchmark(
                "tomcatv", CONFIG,
                EngineOptions(sampling="access_vector", fast_path=False),
            )

    def test_window_must_be_chunk_multiple(self):
        with pytest.raises(ValueError, match="window"):
            run_benchmark(
                "tomcatv", CONFIG,
                EngineOptions(sampling="access_vector", sampling_window=100),
            )

    def test_exact_runs_report_no_sampling(self):
        result = run_benchmark("tomcatv", CONFIG, EngineOptions(profile=FAST))
        assert result.sampling is None


class TestSampledAccuracy:
    @pytest.fixture(scope="class")
    def runs(self):
        options = EngineOptions(profile=FAST)
        exact = run_benchmark("tomcatv", CONFIG, options)
        sampled = run_benchmark(
            "tomcatv", CONFIG, replace(options, sampling="access_vector")
        )
        return exact, sampled

    def test_report_shape_and_skipping(self, runs):
        _, sampled = runs
        report = sampled.sampling
        assert report["mode"] == "access_vector"
        assert report["skipped_windows"] > 0
        assert report["windows"] == (
            report["simulated_windows"] + report["skipped_windows"]
        )
        assert 0.0 < report["skip_ratio"] < 1.0
        assert report["relative_error_bound"] >= 0.05  # reporting floor

    def test_miss_bound_contains_oracle(self, runs):
        exact, sampled = runs
        exact_misses = sum(exact.miss_breakdown().values())
        report = sampled.sampling
        assert (
            abs(report["estimated_l2_misses"] - exact_misses)
            <= report["miss_error_bound"]
        )

    def test_mcpi_within_five_percent_of_oracle(self, runs):
        exact, sampled = runs
        error = abs(sampled.mcpi() - exact.mcpi()) / exact.mcpi()
        assert error <= 0.05
