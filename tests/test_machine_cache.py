"""Tests for the set-associative and fully-associative cache models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.cache import FullyAssociativeLRU, SetAssociativeCache
from repro.machine.config import CacheConfig


def make_cache(size=1024, line=64, assoc=1) -> SetAssociativeCache:
    return SetAssociativeCache(CacheConfig(size, line, assoc))


class TestSetAssociativeCache:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert not cache.lookup(0)
        cache.insert(0)
        assert cache.lookup(0)

    def test_direct_mapped_conflict_evicts(self):
        cache = make_cache(size=1024, line=64, assoc=1)  # 16 sets
        cache.insert(0)
        evicted = cache.insert(1024)  # same set, one cache-size apart
        assert evicted == 0
        assert not cache.contains(0)
        assert cache.contains(1024)

    def test_two_way_holds_both(self):
        cache = make_cache(size=1024, line=64, assoc=2)
        cache.insert(0)
        assert cache.insert(512) is None  # same set, second way
        assert cache.contains(0) and cache.contains(512)

    def test_lru_evicts_least_recent(self):
        cache = make_cache(size=1024, line=64, assoc=2)
        cache.insert(0)
        cache.insert(512)
        cache.lookup(0)  # 0 becomes MRU
        evicted = cache.insert(1024)
        assert evicted == 512

    def test_reinsert_does_not_evict(self):
        cache = make_cache(assoc=2)
        cache.insert(0)
        cache.insert(512)
        assert cache.insert(0) is None
        assert cache.occupancy() == 2

    def test_invalidate(self):
        cache = make_cache()
        cache.insert(0)
        assert cache.invalidate(0)
        assert not cache.contains(0)
        assert not cache.invalidate(0)

    def test_contains_does_not_touch_lru(self):
        cache = make_cache(assoc=2)
        cache.insert(0)
        cache.insert(512)  # MRU now 512
        cache.contains(0)  # must NOT promote 0
        assert cache.insert(1024) == 0

    def test_utilization_and_flush(self):
        cache = make_cache(size=512, line=64, assoc=1)  # 8 lines
        for i in range(4):
            cache.insert(i * 64)
        assert cache.utilization() == pytest.approx(0.5)
        cache.flush()
        assert cache.occupancy() == 0

    def test_resident_lines(self):
        cache = make_cache()
        cache.insert(0)
        cache.insert(64)
        assert set(cache.resident_lines()) == {0, 64}

    @given(st.lists(st.integers(0, 63), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, line_indices):
        cache = make_cache(size=512, line=64, assoc=2)  # 8 lines
        for index in line_indices:
            cache.insert(index * 64)
        assert cache.occupancy() <= cache.config.num_lines
        # Per-set bound: no set holds more than its associativity.
        for ways in cache._sets:
            assert len(ways) <= 2

    @given(st.lists(st.integers(0, 31), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_most_recent_insert_always_resident(self, line_indices):
        cache = make_cache(size=512, line=64, assoc=1)
        for index in line_indices:
            cache.insert(index * 64)
        assert cache.contains(line_indices[-1] * 64)


class TestFullyAssociativeLRU:
    def test_hit_and_miss(self):
        shadow = FullyAssociativeLRU(4)
        assert not shadow.access(0)
        assert shadow.access(0)

    def test_lru_eviction_order(self):
        shadow = FullyAssociativeLRU(2)
        shadow.access(1)
        shadow.access(2)
        shadow.access(1)  # 2 is now LRU
        shadow.access(3)  # evicts 2
        assert shadow.contains(1)
        assert not shadow.contains(2)
        assert shadow.contains(3)

    def test_capacity_bound(self):
        shadow = FullyAssociativeLRU(3)
        for i in range(10):
            shadow.access(i)
        assert len(shadow) == 3

    def test_invalidate(self):
        shadow = FullyAssociativeLRU(2)
        shadow.access(5)
        assert shadow.invalidate(5)
        assert not shadow.invalidate(5)
        assert not shadow.contains(5)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            FullyAssociativeLRU(0)

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=200),
           st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_lru_inclusion_property(self, refs, capacity):
        """LRU is a stack algorithm: a larger fully-associative LRU hits
        on every reference a smaller one hits on (the property that makes
        the shadow-cache miss classification well defined)."""
        small = FullyAssociativeLRU(capacity)
        large = FullyAssociativeLRU(capacity * 2)
        for ref in refs:
            small_hit = small.access(ref)
            large_hit = large.access(ref)
            assert large_hit or not small_hit
