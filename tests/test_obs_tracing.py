"""Tests for span tracing, sinks, and the schema validator."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import (
    NULL_TRACER,
    JsonlSink,
    ProgressLine,
    SchemaError,
    Tracer,
    merge_trace_events,
    validate_metrics_file,
    validate_trace,
    validate_trace_file,
    write_metrics_json,
    write_trace_json,
)


def make_clock(times: list[float]):
    """A fake clock handing out preset perf_counter values."""
    queue = list(times)
    return lambda: queue.pop(0) if queue else times[-1]


class TestTracer:
    def test_complete_event_shape(self):
        tracer = Tracer(pid=3, tid=1, clock=make_clock([0.0, 0.001, 0.004]))
        with tracer.span("sim.loop", phase="steady") as span:
            span.set(weight=2)
            span.count("chunks")
        [event] = tracer.export()
        assert event["name"] == "sim.loop"
        assert event["ph"] == "X"
        assert event["pid"] == 3 and event["tid"] == 1
        assert event["ts"] == pytest.approx(1000.0)  # µs after tracer epoch
        assert event["dur"] == pytest.approx(3000.0)
        assert event["args"] == {"phase": "steady", "weight": 2, "chunks": 1}

    def test_nesting_and_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            assert tracer.depth == 1
            with tracer.span("inner"):
                assert tracer.depth == 2
        assert tracer.depth == 0
        # Inner closes first, so it exports first.
        assert [e["name"] for e in tracer.export()] == ["inner", "outer"]

    def test_exception_closes_span_with_error(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("harness.task"):
                raise RuntimeError("worker died")
        assert tracer.depth == 0
        [event] = tracer.export()
        assert event["args"]["error"] == "RuntimeError"

    def test_instant_event(self):
        tracer = Tracer()
        tracer.instant("watchdog.tripped", rate=0.2)
        [event] = tracer.export()
        assert event["ph"] == "i"
        assert event["args"] == {"rate": 0.2}

    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("x") as span:
            span.set(a=1)
            span.count("b")
        NULL_TRACER.instant("y")
        assert NULL_TRACER.export() == []
        assert not NULL_TRACER.enabled

    def test_export_is_schema_valid(self):
        tracer = Tracer()
        with tracer.span("compile.summaries"):
            pass
        tracer.instant("marker")
        validate_trace(
            {"schema": "repro.obs.trace/v1", "traceEvents": tracer.export()}
        )


class TestMergeTraceEvents:
    def test_pid_restamping_and_process_names(self):
        a = Tracer()
        with a.span("sim.loop"):
            pass
        b = Tracer()
        with b.span("sim.loop"):
            pass
        merged = merge_trace_events(
            [(1, "run-a", a.export()), (2, "run-b", b.export())]
        )
        metadata = [e for e in merged if e["ph"] == "M"]
        assert [m["args"]["name"] for m in metadata] == ["run-a", "run-b"]
        spans = [e for e in merged if e["ph"] == "X"]
        assert sorted(e["pid"] for e in spans) == [1, 2]
        validate_trace({"schema": "repro.obs.trace/v1", "traceEvents": merged})


class TestSinks:
    def test_atomic_json_files_validate(self, tmp_path):
        tracer = Tracer()
        with tracer.span("os.setup"):
            pass
        metrics_path = tmp_path / "m.json"
        trace_path = tmp_path / "t.json"
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("n").inc()
        write_metrics_json(str(metrics_path), registry.snapshot())
        write_trace_json(str(trace_path), tracer.export())
        assert validate_metrics_file(str(metrics_path))["counters"] == {"n": 1}
        payload = validate_trace_file(str(trace_path))
        assert payload["displayTimeUnit"] == "ms"
        # No stray tmp files left behind.
        assert sorted(p.name for p in tmp_path.iterdir()) == ["m.json", "t.json"]

    def test_jsonl_sink_whole_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(str(path)) as sink:
            sink.emit({"a": 1})
            sink.emit({"b": 2})
        lines = path.read_text().splitlines()
        assert [json.loads(line) for line in lines] == [{"a": 1}, {"b": 2}]
        with pytest.raises(ValueError):
            sink.emit({"c": 3})


class TestProgressLine:
    def test_renders_campaign_event(self):
        stream = io.StringIO()
        line = ProgressLine(label="sweep", stream=stream, force=True)
        line.update(
            {"done": 7, "total": 12, "failed": 1, "retried": 2,
             "loaded": 0, "honor_rate": 0.98}
        )
        assert "sweep: 7/12 done, 1 failed, 2 retried, honor 0.98" in stream.getvalue()
        line.finish()
        assert stream.getvalue().endswith("\n")

    def test_inactive_off_tty(self):
        stream = io.StringIO()  # not a TTY
        line = ProgressLine(stream=stream)
        line.update({"done": 1, "total": 2})
        line.finish()
        assert stream.getvalue() == ""

    def test_omits_zero_fields_and_missing_honor(self):
        line = ProgressLine(stream=io.StringIO(), force=True)
        assert line.render({"done": 3, "total": 3, "honor_rate": None}) == (
            "sweep: 3/3 done"
        )


class TestSchemaValidator:
    def test_rejects_wrong_type(self):
        with pytest.raises(SchemaError, match="traceEvents"):
            validate_trace({"schema": "repro.obs.trace/v1", "traceEvents": "nope"})

    def test_rejects_missing_required(self):
        with pytest.raises(SchemaError, match="missing required"):
            validate_trace({"schema": "repro.obs.trace/v1"})

    def test_rejects_bad_enum(self):
        with pytest.raises(SchemaError, match="ph"):
            validate_trace(
                {
                    "schema": "repro.obs.trace/v1",
                    "traceEvents": [
                        {"name": "x", "ph": "Z", "pid": 0, "tid": 0}
                    ],
                }
            )

    def test_rejects_bool_masquerading_as_integer(self):
        from repro.obs import validate_metrics

        with pytest.raises(SchemaError, match="counters"):
            validate_metrics(
                {
                    "schema": "repro.obs.metrics/v1",
                    "scope": "run",
                    "counters": {"flag": True},
                    "gauges": {},
                    "histograms": {},
                }
            )
