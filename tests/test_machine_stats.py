"""Tests for the statistics module (MCPI math, aggregation, categories)."""

import pytest

from repro.machine.stats import OVERHEAD_CATEGORIES, CpuStats, MachineStats, MissKind


class TestMissKind:
    def test_replacement_kinds(self):
        assert MissKind.CAPACITY.is_replacement
        assert MissKind.CONFLICT.is_replacement
        assert not MissKind.COLD.is_replacement
        assert not MissKind.TRUE_SHARING.is_replacement

    def test_communication_kinds(self):
        assert MissKind.TRUE_SHARING.is_communication
        assert MissKind.FALSE_SHARING.is_communication
        assert not MissKind.CAPACITY.is_communication

    def test_kinds_partition(self):
        for kind in MissKind:
            assert not (kind.is_replacement and kind.is_communication)


class TestCpuStats:
    def make(self) -> CpuStats:
        stats = CpuStats()
        stats.instructions = 400
        stats.busy_ns = 1000.0  # 2.5ns/instr
        stats.l1_stall_ns = 100.0
        stats.l2_stall_ns[MissKind.CONFLICT] = 300.0
        stats.l2_stall_ns[MissKind.TRUE_SHARING] = 100.0
        stats.l2_misses[MissKind.CONFLICT] = 3
        stats.l2_misses[MissKind.CAPACITY] = 2
        stats.l2_misses[MissKind.FALSE_SHARING] = 1
        stats.overhead_ns["kernel"] = 50.0
        stats.overhead_ns["sequential"] = 150.0
        return stats

    def test_miss_totals(self):
        stats = self.make()
        assert stats.total_l2_misses == 6
        assert stats.replacement_misses == 5
        assert stats.communication_misses == 1

    def test_memory_stall(self):
        assert self.make().memory_stall_ns == 500.0

    def test_mcpi_definition(self):
        # 500ns stall / (2.5ns cycle * 400 instructions) = 0.5.
        assert self.make().mcpi() == pytest.approx(0.5)

    def test_mcpi_zero_without_instructions(self):
        assert CpuStats().mcpi() == 0.0

    def test_mcpi_breakdown_sums(self):
        stats = self.make()
        parts = stats.mcpi_breakdown()
        assert sum(parts.values()) == pytest.approx(stats.mcpi())
        assert parts["conflict"] == pytest.approx(0.3)
        assert parts["l1"] == pytest.approx(0.1)

    def test_mcpi_breakdown_empty_for_idle_cpu(self):
        assert CpuStats().mcpi_breakdown() == {}

    def test_time_hierarchy(self):
        stats = self.make()
        assert stats.execution_ns == 1500.0
        assert stats.overhead_total_ns == 200.0
        assert stats.total_ns == 1700.0

    def test_overhead_categories_complete(self):
        assert set(CpuStats().overhead_ns) == set(OVERHEAD_CATEGORIES)


class TestMachineStats:
    def test_for_cpus_independent_instances(self):
        stats = MachineStats.for_cpus(3)
        stats[0].instructions = 5
        assert stats[1].instructions == 0
        assert stats.num_cpus == 3

    def test_totals(self):
        stats = MachineStats.for_cpus(2)
        for cpu in stats.cpus:
            cpu.instructions = 10
            cpu.l2_misses[MissKind.COLD] = 2
        assert stats.total_instructions() == 20
        assert stats.total_misses(MissKind.COLD) == 4
        assert stats.total_l2_misses() == 4

    def test_combined_overheads(self):
        stats = MachineStats.for_cpus(2)
        stats[0].overhead_ns["kernel"] = 10.0
        stats[1].overhead_ns["kernel"] = 20.0
        assert stats.combined_overhead_ns()["kernel"] == 30.0

    def test_mean_mcpi_skips_idle_cpus(self):
        stats = MachineStats.for_cpus(2)
        stats[0].instructions = 100
        stats[0].busy_ns = 250.0
        stats[0].l1_stall_ns = 250.0
        # CPU 1 never ran: it must not drag the mean to half.
        assert stats.mean_mcpi() == pytest.approx(1.0)

    def test_mean_mcpi_empty(self):
        assert MachineStats.for_cpus(2).mean_mcpi() == 0.0

    def test_miss_breakdown_keys(self):
        stats = MachineStats.for_cpus(1)
        assert set(stats.miss_breakdown()) == {k.value for k in MissKind}
