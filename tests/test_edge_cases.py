"""Edge cases and failure-injection across the stack."""

import pytest

from repro.compiler.ir import (
    ArrayDecl,
    BoundaryAccess,
    Communication,
    InstructionStream,
    Loop,
    LoopKind,
    PartitionedAccess,
    Phase,
    Program,
    StridedAccess,
)
from repro.compiler.padding import layout_arrays
from repro.compiler.summaries import extract_summary
from repro.core.coloring import generate_page_colors
from repro.machine.config import CacheConfig, MachineConfig
from repro.sim.engine import EngineOptions, run_program


def machine(num_cpus=4) -> MachineConfig:
    return MachineConfig(
        num_cpus=num_cpus,
        page_size=256,
        l1d=CacheConfig(1024, 64, 2),
        l1i=CacheConfig(1024, 64, 2),
        l2=CacheConfig(8192, 64, 1),
    )


def run(program, config, **kw):
    return run_program(program, config, EngineOptions(**kw))


class TestTinyPrograms:
    def test_single_page_array(self):
        config = machine(4)
        arrays = (ArrayDecl("a", config.page_size),)
        loop = Loop("l", LoopKind.PARALLEL, (PartitionedAccess("a", units=1),))
        program = Program("tiny", arrays, (Phase("p", (loop,)),))
        result = run(program, config, cdpc=True)
        assert result.wall_ns > 0

    def test_more_cpus_than_iterations(self):
        config = machine(4)
        arrays = (ArrayDecl("a", 2 * config.page_size),)
        loop = Loop("l", LoopKind.PARALLEL, (PartitionedAccess("a", units=2),))
        program = Program("p", arrays, (Phase("p", (loop,)),))
        result = run(program, config)
        # Two CPUs work, two idle at the barrier.
        assert result.stats.cpus[3].instructions == 0
        assert result.stats.cpus[3].overhead_ns["load_imbalance"] > 0

    def test_instruction_only_loop(self):
        config = machine(2)
        arrays = (ArrayDecl("a", config.page_size),)
        loop = Loop(
            "icache",
            LoopKind.SEQUENTIAL,
            (InstructionStream(footprint_bytes=4096),
             PartitionedAccess("a", units=1)),
        )
        program = Program("p", arrays, (Phase("p", (loop,)),))
        result = run(program, config)
        assert result.stats.cpus[0].l1i_misses > 0

    def test_boundary_only_loop(self):
        config = machine(4)
        arrays = (ArrayDecl("a", 16 * config.page_size),)
        loop = Loop(
            "comm",
            LoopKind.PARALLEL,
            (BoundaryAccess("a", units=16, comm=Communication.SHIFT,
                            boundary_fraction=1.0),),
        )
        program = Program("p", arrays, (Phase("p", (loop,)),))
        result = run(program, config)
        assert result.wall_ns > 0


class TestCdpcDegenerateSummaries:
    def test_all_strided_program_yields_no_hints(self):
        """su2cor taken to the limit: nothing is summarizable."""
        config = machine(4)
        arrays = (ArrayDecl("a", 16 * config.page_size),)
        loop = Loop("l", LoopKind.PARALLEL,
                    (StridedAccess("a", block_bytes=256),))
        program = Program("p", arrays, (Phase("p", (loop,)),))
        layout = layout_arrays(arrays, 64, 1024)
        summary = extract_summary(program, layout)
        assert summary.partitionings == []
        coloring = generate_page_colors(summary, config.page_size, 32, 4)
        assert coloring.colors == {}
        # The engine still runs: CDPC degrades to the fallback policy.
        result = run(program, config, cdpc=True)
        assert result.wall_ns > 0

    def test_single_color_machine(self):
        summary_config = machine(2)
        arrays = (ArrayDecl("a", 4 * summary_config.page_size),)
        loop = Loop("l", LoopKind.PARALLEL, (PartitionedAccess("a", units=4),))
        program = Program("p", arrays, (Phase("p", (loop,)),))
        layout = layout_arrays(arrays, 64, 1024)
        summary = extract_summary(program, layout)
        coloring = generate_page_colors(summary, summary_config.page_size, 1, 2)
        assert set(coloring.colors.values()) == {0}

    def test_one_cpu_cdpc_is_harmless(self):
        config = machine(1)
        arrays = (ArrayDecl("a", 32 * config.page_size),)
        loop = Loop("l", LoopKind.PARALLEL, (PartitionedAccess("a", units=32),))
        program = Program("p", arrays, (Phase("p", (loop,)),))
        base = run(program, config)
        cdpc = run(program, config, cdpc=True)
        assert cdpc.wall_ns == pytest.approx(base.wall_ns, rel=0.02)


class TestExtremePressure:
    def test_total_pressure_still_runs_with_fallback_colors(self):
        config = machine(2)
        arrays = (ArrayDecl("a", 8 * config.page_size),)
        loop = Loop("l", LoopKind.PARALLEL, (PartitionedAccess("a", units=8),))
        program = Program("p", arrays, (Phase("p", (loop,)),))
        # Occupy half of physical memory; plenty remains in absolute terms
        # but many preferred colors are exhausted.
        result = run(program, config, cdpc=True, memory_pressure=0.5)
        assert result.wall_ns > 0

    def test_zero_jitter_and_seed_do_not_crash_bin_hopping(self):
        config = machine(2)
        arrays = (ArrayDecl("a", 8 * config.page_size),)
        loop = Loop("l", LoopKind.PARALLEL, (PartitionedAccess("a", units=8),))
        program = Program("p", arrays, (Phase("p", (loop,)),))
        result = run(program, config, policy="bin_hopping", init_jitter=0)
        assert result.wall_ns > 0


class TestFractionalSweeps:
    def test_fractional_sweep_produces_partial_retraversal(self):
        config = machine(1)
        arrays = (ArrayDecl("a", 4 * config.page_size),)
        loop = Loop(
            "l", LoopKind.PARALLEL,
            (PartitionedAccess("a", units=4, sweeps=1.5),),
        )
        program = Program("p", arrays, (Phase("p", (loop,)),))
        full = Program(
            "p2", arrays,
            (Phase("p", (Loop("l", LoopKind.PARALLEL,
                              (PartitionedAccess("a", units=4, sweeps=1.0),)),)),),
        )
        partial = run(program, config)
        single = run(full, config)
        ratio = (
            partial.stats.total_instructions()
            / single.stats.total_instructions()
        )
        assert 1.4 < ratio < 1.6
