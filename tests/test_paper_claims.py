"""Targeted tests for specific quantitative claims in the paper's text."""

from repro.machine.config import sgi_2way, sgi_8way, sgi_base
from repro.machine.stats import MissKind
from repro.sim.engine import EngineOptions, run_benchmark
from repro.sim.tracegen import SimProfile

FAST = SimProfile.fast()


def run(name, config, **kwargs):
    return run_benchmark(name, config, EngineOptions(profile=FAST, **kwargs))


class TestEightWayClaim:
    """Section 6.1: tomcatv has seven large data structures and 'only an
    eight-way set-associative cache of size 1MB would eliminate all
    conflicts for 16 processors'."""

    def test_direct_mapped_conflicts_heavily(self):
        result = run("tomcatv", sgi_base(16).scaled(16))
        assert result.replacement_misses() > 10_000

    def test_two_way_does_not_fix_tomcatv(self):
        result = run("tomcatv", sgi_2way(16).scaled(16))
        assert result.replacement_misses() > 10_000

    def test_eight_way_eliminates_conflicts_without_cdpc(self):
        result = run("tomcatv", sgi_8way(16).scaled(16))
        assert result.misses(MissKind.CONFLICT) < 1_000
        # With seven ways needed and eight available, replacement misses
        # nearly vanish even under the plain page-coloring policy.
        dm = run("tomcatv", sgi_base(16).scaled(16))
        assert result.replacement_misses() < dm.replacement_misses() / 10


class TestColorArithmetic:
    """Section 2.1's worked example: 1MB cache, 4KB pages -> 256 colors
    direct-mapped, 128 two-way."""

    def test_color_counts(self):
        assert sgi_base().num_colors == 256
        assert sgi_2way().num_colors == 128
        assert sgi_8way().num_colors == 32


class TestAggregateCacheObservation:
    """Section 4.2: with 16 processors the aggregate cache (16MB) exceeds
    many data sets, but the default policy does not convert that into
    fewer replacement misses — CDPC does."""

    def test_page_coloring_wastes_aggregate_cache(self):
        one = run("swim", sgi_base(1).scaled(16))
        sixteen = run("swim", sgi_base(16).scaled(16))
        # Misses do not drop proportionally with 16x aggregate cache.
        assert sixteen.replacement_misses() > one.replacement_misses() / 4

    def test_cdpc_converts_aggregate_cache_into_hits(self):
        sixteen = run("swim", sgi_base(16).scaled(16), cdpc=True)
        one = run("swim", sgi_base(1).scaled(16), cdpc=True)
        assert sixteen.replacement_misses() < one.replacement_misses() / 20


class TestComplementarity:
    """Section 6.2: 'Prefetching improves the performance of CDPC by
    hiding the latency of misses that CDPC does not eliminate.'"""

    def test_prefetch_improves_cdpc_where_misses_remain(self):
        config = sgi_base(4).scaled(16)
        cdpc = run("tomcatv", config, cdpc=True)
        both = run("tomcatv", config, cdpc=True, prefetch=True)
        assert cdpc.replacement_misses() > 0  # misses remain at 4 CPUs
        assert both.wall_ns < cdpc.wall_ns

    def test_relative_advantage_shifts_with_cpu_count(self):
        # "With fewer processors ... prefetching offers more of an
        # advantage than CDPC.  With increased numbers of processors ...
        # CDPC becomes more important."
        low = sgi_base(4).scaled(16)
        high = sgi_base(16).scaled(16)
        base_low, base_high = run("swim", low), run("swim", high)
        pf_gain_low = base_low.wall_ns / run("swim", low, prefetch=True).wall_ns
        cd_gain_low = base_low.wall_ns / run("swim", low, cdpc=True).wall_ns
        pf_gain_high = base_high.wall_ns / run("swim", high, prefetch=True).wall_ns
        cd_gain_high = base_high.wall_ns / run("swim", high, cdpc=True).wall_ns
        assert pf_gain_low > cd_gain_low
        assert cd_gain_high > pf_gain_high


class TestSu2corDegradation:
    """Figure 6/7: su2cor is the benchmark where CDPC can slightly degrade
    performance (hinted mappings colliding with the unsummarizable gauge
    arrays).  In this reproduction the degradation surfaces on the two-way
    set-associative configuration."""

    def test_cdpc_never_helps_su2cor_much_and_can_hurt(self):
        from repro.machine.config import sgi_2way

        config = sgi_2way(16).scaled(16)
        base = run_benchmark("su2cor", config, EngineOptions(profile=FAST))
        cdpc = run_benchmark(
            "su2cor", config, EngineOptions(cdpc=True, profile=FAST)
        )
        ratio = base.wall_ns / cdpc.wall_ns
        assert ratio < 1.1  # no meaningful benefit ...
        # ... and the unlucky interaction can make it a slight loss.
        assert ratio > 0.8
