"""Distributional properties of the mapping policies on real fault streams."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.config import CacheConfig, MachineConfig
from repro.osmodel.policies import BinHoppingPolicy, PageColoringPolicy
from repro.osmodel.vm import VirtualMemory


def config() -> MachineConfig:
    return MachineConfig(
        num_cpus=2,
        page_size=256,
        l1d=CacheConfig(512, 64, 2),
        l1i=CacheConfig(512, 64, 2),
        l2=CacheConfig(4096, 64, 1),  # 16 colors
    )


class TestPageColoringDistribution:
    def test_contiguous_pages_fill_colors_uniformly(self):
        cfg = config()
        vm = VirtualMemory(cfg, PageColoringPolicy(cfg.num_colors))
        for vpage in range(64):
            vm.fault(vpage)
        histogram = vm.color_histogram()
        assert histogram == [4] * 16

    def test_strided_pages_concentrate(self):
        # Pages a cache-set-size apart all get the same color: the
        # conflict property page coloring is built around.
        cfg = config()
        vm = VirtualMemory(cfg, PageColoringPolicy(cfg.num_colors))
        for k in range(8):
            vm.fault(k * 16)  # stride of one color cycle
        histogram = vm.color_histogram()
        assert histogram[0] == 8
        assert sum(histogram) == 8

    @given(st.sets(st.integers(0, 511), min_size=1, max_size=64))
    @settings(max_examples=40, deadline=None)
    def test_color_always_vpage_mod_colors(self, vpages):
        cfg = config()
        vm = VirtualMemory(cfg, PageColoringPolicy(cfg.num_colors))
        for vpage in vpages:
            vm.fault(vpage)
            assert vm.color_of_vpage(vpage) == vpage % 16


class TestBinHoppingDistribution:
    def test_fault_order_fills_uniformly_regardless_of_vpages(self):
        cfg = config()
        vm = VirtualMemory(cfg, BinHoppingPolicy(cfg.num_colors))
        # Fault pages in a scattered, non-contiguous order.
        for vpage in [7, 300, 12, 255, 90, 3, 400, 41] * 4:
            vm.ensure_mapped(vpage)
        histogram = vm.color_histogram()
        # Eight distinct pages: first eight colors, one page each.
        assert sum(histogram) == 8
        assert max(histogram) == 1

    @given(st.lists(st.integers(0, 511), min_size=16, max_size=128,
                    unique=True))
    @settings(max_examples=40, deadline=None)
    def test_histogram_balanced_within_one(self, vpages):
        cfg = config()
        vm = VirtualMemory(cfg, BinHoppingPolicy(cfg.num_colors))
        for vpage in vpages:
            vm.fault(vpage)
        histogram = vm.color_histogram()
        assert max(histogram) - min(histogram) <= 1
