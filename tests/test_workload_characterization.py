"""Per-workload characterization: each model's documented pathology.

One test per benchmark asserting the specific behaviour the paper (and
docs/workload_models.md) attributes to it, measured from a real run.
"""

from repro.machine.config import sgi_base
from repro.sim.engine import EngineOptions, run_benchmark
from repro.sim.tracegen import SimProfile

FAST = SimProfile.fast()


def run(name, cpus=8, **kwargs):
    config = sgi_base(cpus).scaled(16)
    return run_benchmark(name, config, EngineOptions(profile=FAST, **kwargs))


class TestTomcatv:
    def test_bandwidth_hungry(self):
        # One of the benchmarks that load the bus heavily at 16 CPUs.
        result = run("tomcatv", cpus=16)
        assert result.bus_utilization() > 0.5

    def test_replacement_dominates_communication(self):
        result = run("tomcatv")
        assert result.replacement_misses() > 20 * result.communication_misses()


class TestSwim:
    def test_rotate_communication_produces_sharing(self):
        # Periodic boundaries: neighbours exchange written data.
        result = run("swim")
        assert result.communication_misses() > 0

    def test_most_mapping_sensitive_suite_member(self):
        base = run("swim", cpus=16)
        cdpc = run("swim", cpus=16, cdpc=True)
        assert base.wall_ns / cdpc.wall_ns > 2.0


class TestSu2cor:
    def test_gauge_arrays_dominate_misses(self):
        result = run("su2cor")
        gauge = result.array_misses.get("u1", 0) + result.array_misses.get("u2", 0)
        assert gauge > 0.3 * sum(result.array_misses.values())


class TestHydro2d:
    def test_gains_once_footprint_fits(self):
        base = run("hydro2d")
        cdpc = run("hydro2d", cdpc=True)
        assert base.wall_ns / cdpc.wall_ns > 1.5


class TestMgrid:
    def test_high_reuse_means_few_misses_per_instruction(self):
        mgrid = run("mgrid")
        tomcatv = run("tomcatv")
        mgrid_rate = mgrid.replacement_misses() / mgrid.stats.total_instructions()
        tomcatv_rate = (
            tomcatv.replacement_misses() / tomcatv.stats.total_instructions()
        )
        assert mgrid_rate < tomcatv_rate / 2


class TestApplu:
    def test_imbalance_dominates_overheads_at_16(self):
        result = run("applu", cpus=16)
        overheads = result.overhead_breakdown_ns()
        assert overheads["load_imbalance"] == max(overheads.values())

    def test_prefetch_mostly_dropped_or_late(self):
        result = run("applu", prefetch=True)
        stats = result.stats.cpus[0]
        assert stats.prefetches_dropped_tlb > 0.15 * stats.prefetches_issued


class TestTurb3d:
    def test_few_replacement_misses_at_high_p(self):
        result = run("turb3d")
        # High-reuse FFT tiles: essentially no steady-state misses at 8P.
        assert result.replacement_misses() < 0.001 * result.stats.total_instructions()


class TestApsi:
    def test_suppressed_time_dominates(self):
        result = run("apsi")
        overheads = result.overhead_breakdown_ns()
        assert overheads["suppressed"] > overheads["load_imbalance"]
        assert overheads["suppressed"] > 0.2 * result.combined_execution_ns


class TestFpppp:
    def test_instruction_bound(self):
        result = run("fpppp")
        stats = result.stats.cpus[0]
        assert stats.l1i_misses > stats.l1d_misses
        assert result.bus_utilization() < 0.1


class TestWave5:
    def test_limited_speedup(self):
        one = run("wave5", cpus=1)
        eight = run("wave5")
        assert one.wall_ns / eight.wall_ns < 4.0  # far from linear

    def test_suppressed_particle_pushes(self):
        result = run("wave5")
        assert result.overhead_breakdown_ns()["suppressed"] > 0
