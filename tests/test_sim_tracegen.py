"""Tests for trace generation."""

import numpy as np
from repro.compiler.ir import (
    ArrayDecl,
    BoundaryAccess,
    Communication,
    InstructionStream,
    Loop,
    LoopKind,
    PartitionedAccess,
    Phase,
    Program,
    StridedAccess,
)
from repro.compiler.padding import layout_arrays
from repro.compiler.parallelize import schedule_loop
from repro.compiler.prefetch_pass import insert_prefetches
from repro.machine.config import CacheConfig, MachineConfig
from repro.sim.tracegen import (
    FLAG_INSTR,
    FLAG_WRITE,
    INSTRUCTION_BASE,
    SimProfile,
    loop_traces,
)


def machine(num_cpus=2) -> MachineConfig:
    return MachineConfig(
        num_cpus=num_cpus,
        page_size=256,
        l1d=CacheConfig(512, 64, 2),
        l1i=CacheConfig(512, 64, 2),
        l2=CacheConfig(4096, 64, 1),
    )


def traces_for(loop, arrays, config, profile=None, plan=None):
    program = Program("p", arrays, (Phase("ph", (loop,)),))
    layout = layout_arrays(arrays, config.l2.line_size, config.l1d.size)
    schedule = schedule_loop(loop, config.num_cpus)
    return layout, loop_traces(
        loop, schedule, layout, config, profile or SimProfile(), plan
    )


class TestPartitionedTraces:
    def test_each_cpu_stays_in_its_partition(self):
        config = machine(2)
        arrays = (ArrayDecl("a", 4096),)
        loop = Loop("l", LoopKind.PARALLEL, (PartitionedAccess("a", units=16),))
        layout, traces = traces_for(loop, arrays, config)
        base = layout.base_of("a")
        assert traces[0].addrs.min() >= base
        assert traces[0].addrs.max() < base + 2048
        assert traces[1].addrs.min() >= base + 2048
        assert traces[1].addrs.max() < base + 4096

    def test_stride_is_half_line(self):
        config = machine(1)
        arrays = (ArrayDecl("a", 4096),)
        loop = Loop("l", LoopKind.PARALLEL, (PartitionedAccess("a", units=16),))
        _, traces = traces_for(loop, arrays, config)
        diffs = np.diff(traces[0].addrs)
        assert set(diffs.tolist()) == {32}

    def test_write_flags(self):
        config = machine(1)
        arrays = (ArrayDecl("a", 1024), ArrayDecl("b", 1024))
        loop = Loop(
            "l",
            LoopKind.PARALLEL,
            (
                PartitionedAccess("a", units=4),
                PartitionedAccess("b", units=4, is_write=True),
            ),
        )
        layout, traces = traces_for(loop, arrays, config)
        flags = traces[0].flags
        addrs = traces[0].addrs
        in_b = (addrs >= layout.base_of("b")) & (addrs < layout.end_of("b"))
        assert np.all((flags[in_b] & FLAG_WRITE) != 0)
        assert np.all((flags[~in_b] & FLAG_WRITE) == 0)

    def test_equal_length_streams_alternate(self):
        config = machine(1)
        arrays = (ArrayDecl("a", 1024), ArrayDecl("b", 1024))
        loop = Loop(
            "l",
            LoopKind.PARALLEL,
            (PartitionedAccess("a", units=4), PartitionedAccess("b", units=4)),
        )
        layout, traces = traces_for(loop, arrays, config)
        addrs = traces[0].addrs
        is_a = addrs < layout.base_of("b")
        # Strict alternation: a, b, a, b, ...
        assert np.all(is_a[::2]) and not np.any(is_a[1::2])

    def test_fraction_limits_touched_bytes(self):
        config = machine(1)
        arrays = (ArrayDecl("a", 4096),)
        loop = Loop(
            "l", LoopKind.PARALLEL,
            (PartitionedAccess("a", units=16, fraction=0.5),),
        )
        _, traces = traces_for(loop, arrays, config)
        assert len(traces[0]) == 4096 // 2 // 32

    def test_sweeps_repeat_addresses(self):
        config = machine(1)
        arrays = (ArrayDecl("a", 1024),)
        loop = Loop(
            "l", LoopKind.PARALLEL,
            (PartitionedAccess("a", units=4, sweeps=2.0),),
        )
        _, traces = traces_for(loop, arrays, config)
        assert len(traces[0]) == 2 * (1024 // 32)

    def test_sweep_limit_caps(self):
        config = machine(1)
        arrays = (ArrayDecl("a", 1024),)
        loop = Loop(
            "l", LoopKind.PARALLEL,
            (PartitionedAccess("a", units=4, sweeps=8.0),),
        )
        _, traces = traces_for(loop, arrays, config, profile=SimProfile.fast())
        assert len(traces[0]) == 1024 // 32


class TestOtherAccessKinds:
    def test_strided_interleaves_blocks_across_cpus(self):
        config = machine(2)
        arrays = (ArrayDecl("a", 4096),)
        loop = Loop("l", LoopKind.PARALLEL, (StridedAccess("a", block_bytes=256),))
        layout, traces = traces_for(loop, arrays, config)
        base = layout.base_of("a")
        blocks0 = set(((traces[0].addrs - base) // 256).tolist())
        blocks1 = set(((traces[1].addrs - base) // 256).tolist())
        assert blocks0 == {0, 2, 4, 6, 8, 10, 12, 14}
        assert blocks1 == {1, 3, 5, 7, 9, 11, 13, 15}

    def test_boundary_reads_neighbour_strip_at_word_granularity(self):
        config = machine(2)
        arrays = (ArrayDecl("a", 4096),)
        loop = Loop(
            "l",
            LoopKind.PARALLEL,
            (
                PartitionedAccess("a", units=16),
                BoundaryAccess("a", units=16, comm=Communication.SHIFT,
                               boundary_fraction=1.0),
            ),
        )
        layout, traces = traces_for(loop, arrays, config)
        base = layout.base_of("a")
        # CPU 0's boundary refs lie in CPU 1's first unit (bytes 2048-2303).
        boundary = traces[0].addrs[traces[0].addrs >= base + 2048]
        assert len(boundary) == 256 // 8
        assert boundary.max() < base + 2048 + 256

    def test_rotate_boundary_wraps_to_first_partition(self):
        config = machine(2)
        arrays = (ArrayDecl("a", 4096),)
        loop = Loop(
            "l",
            LoopKind.PARALLEL,
            (BoundaryAccess("a", units=16, comm=Communication.ROTATE,
                            boundary_fraction=1.0),),
        )
        layout, traces = traces_for(loop, arrays, config)
        base = layout.base_of("a")
        # With 2 CPUs and rotate, CPU 1 reads both edges of CPU 0's range.
        assert (traces[1].addrs < base + 2048).all()

    def test_instruction_stream_flags_and_base(self):
        config = machine(1)
        arrays = (ArrayDecl("a", 1024),)
        loop = Loop(
            "l",
            LoopKind.SEQUENTIAL,
            (
                InstructionStream(footprint_bytes=1024),
                PartitionedAccess("a", units=4),
            ),
        )
        _, traces = traces_for(loop, arrays, config)
        flags = traces[0].flags
        addrs = traces[0].addrs
        instr = (flags & FLAG_INSTR) != 0
        assert instr.any()
        assert (addrs[instr] >= INSTRUCTION_BASE).all()
        assert (addrs[~instr] < INSTRUCTION_BASE).all()

    def test_sequential_loop_only_master_trace(self):
        config = machine(4)
        arrays = (ArrayDecl("a", 1024),)
        loop = Loop("l", LoopKind.SEQUENTIAL, (PartitionedAccess("a", units=4),))
        _, traces = traces_for(loop, arrays, config)
        assert len(traces[0]) > 0
        assert all(len(traces[cpu]) == 0 for cpu in range(1, 4))

    def test_blocked_idle_cpu_has_empty_trace(self):
        from repro.common import Partitioning

        config = machine(4)
        arrays = (ArrayDecl("a", 3 * 1024),)
        loop = Loop(
            "l",
            LoopKind.PARALLEL,
            (PartitionedAccess("a", units=3, partitioning=Partitioning.BLOCKED),),
        )
        _, traces = traces_for(loop, arrays, config)
        # ceil(3/4) = 1 unit per CPU; CPU 3 gets nothing.
        assert len(traces[3]) == 0
        assert len(traces[0]) > 0


class TestPrefetchTargets:
    def test_targets_emitted_once_per_line(self):
        config = machine(1)
        arrays = (ArrayDecl("big", 64 * 1024), ArrayDecl("small", 1024))
        loop = Loop(
            "l",
            LoopKind.PARALLEL,
            (
                PartitionedAccess("big", units=16, is_write=True),
                PartitionedAccess("small", units=16),
            ),
        )
        program = Program("p", arrays, (Phase("ph", (loop,)),))
        layout = layout_arrays(arrays, config.l2.line_size, config.l1d.size)
        plan = insert_prefetches(program, layout, config, 1)
        schedule = schedule_loop(loop, 1)
        traces = loop_traces(loop, schedule, layout, config, SimProfile(), plan)
        pf = traces[0].prefetch
        assert pf is not None
        issued = pf[pf != 0]
        # One prefetch per 64B line of each prefetched array (2 refs/line),
        # minus the pipeline tail (the last `distance` lines of each stream
        # have no in-stream target); both arrays stream past the cache.
        distance = plan.decisions[0].distance_lines
        expected_lines = (64 * 1024 + 1024) // 64 - 2 * distance
        assert len(issued) == expected_lines

    def test_pipelined_targets_point_ahead(self):
        config = machine(1)
        arrays = (ArrayDecl("big", 64 * 1024),)
        loop = Loop(
            "l", LoopKind.PARALLEL, (PartitionedAccess("big", units=16),),
        )
        program = Program("p", arrays, (Phase("ph", (loop,)),))
        layout = layout_arrays(arrays, config.l2.line_size, config.l1d.size)
        plan = insert_prefetches(program, layout, config, 1)
        schedule = schedule_loop(loop, 1)
        traces = loop_traces(loop, schedule, layout, config, SimProfile(), plan)
        mask = traces[0].prefetch != 0
        gaps = traces[0].prefetch[mask] - traces[0].addrs[mask]
        distance = plan.decisions[0].distance_lines * 64
        # Contiguous stream: in-stream lookahead equals address lookahead.
        assert set(gaps.tolist()) == {distance}

    def test_no_plan_no_prefetch_array(self):
        config = machine(1)
        arrays = (ArrayDecl("a", 1024),)
        loop = Loop("l", LoopKind.PARALLEL, (PartitionedAccess("a", units=4),))
        _, traces = traces_for(loop, arrays, config)
        assert traces[0].prefetch is None


class TestOccurrenceVariation:
    def test_scale_is_deterministic_and_bounded(self):
        from repro.sim.tracegen import occurrence_scale

        values = [occurrence_scale(0.3, k, "phase") for k in range(20)]
        assert values == [occurrence_scale(0.3, k, "phase") for k in range(20)]
        assert all(0.7 <= v <= 1.3 for v in values)
        assert len(set(values)) > 10  # actually varies across occurrences

    def test_zero_variation_is_identity(self):
        from repro.sim.tracegen import occurrence_scale

        assert occurrence_scale(0.0, 5, "x") == 1.0

    def test_fraction_scale_changes_partitioned_trace_length(self):
        config = machine(1)
        arrays = (ArrayDecl("a", 4096),)
        loop = Loop("l", LoopKind.PARALLEL, (PartitionedAccess("a", units=16),))
        layout = layout_arrays(arrays, config.l2.line_size, config.l1d.size)
        schedule = schedule_loop(loop, 1)
        full = loop_traces(loop, schedule, layout, config, SimProfile())
        half = loop_traces(loop, schedule, layout, config, SimProfile(),
                           fraction_scale=0.5)
        assert len(half[0]) == len(full[0]) // 2

    def test_fraction_scale_clamped_at_one(self):
        config = machine(1)
        arrays = (ArrayDecl("a", 4096),)
        loop = Loop("l", LoopKind.PARALLEL, (PartitionedAccess("a", units=16),))
        layout = layout_arrays(arrays, config.l2.line_size, config.l1d.size)
        schedule = schedule_loop(loop, 1)
        full = loop_traces(loop, schedule, layout, config, SimProfile())
        over = loop_traces(loop, schedule, layout, config, SimProfile(),
                           fraction_scale=1.5)
        assert len(over[0]) == len(full[0])

    def test_strided_sweeps_scale(self):
        config = machine(1)
        arrays = (ArrayDecl("a", 4096),)
        loop = Loop("l", LoopKind.PARALLEL,
                    (StridedAccess("a", block_bytes=256),))
        layout = layout_arrays(arrays, config.l2.line_size, config.l1d.size)
        schedule = schedule_loop(loop, 1)
        full = loop_traces(loop, schedule, layout, config, SimProfile())
        reduced = loop_traces(loop, schedule, layout, config, SimProfile(),
                              fraction_scale=0.5)
        assert len(reduced[0]) == len(full[0]) // 2


class TestStreamRelativeLookahead:
    def test_strided_prefetch_stays_in_own_blocks(self):
        """Software pipelining prefetches d iterations ahead in the stream:
        a strided stream's targets must fall in this processor's blocks,
        never in a neighbour's interleaved block."""
        from repro.compiler.ir import Program, Phase
        from repro.compiler.prefetch_pass import insert_prefetches

        config = machine(2)
        arrays = (ArrayDecl("big", 64 * 1024),)
        loop = Loop("l", LoopKind.PARALLEL,
                    (StridedAccess("big", block_bytes=256),))
        program = Program("p", arrays, (Phase("ph", (loop,)),))
        layout = layout_arrays(arrays, config.l2.line_size, config.l1d.size)
        plan = insert_prefetches(program, layout, config, 2)
        schedule = schedule_loop(loop, 2)
        traces = loop_traces(loop, schedule, layout, config, SimProfile(), plan)
        base = layout.base_of("big")
        for cpu in (0, 1):
            pf = traces[cpu].prefetch
            assert pf is not None
            targets = pf[pf != 0] & ~1  # strip the TLB-strict marker bit
            blocks = ((targets - base) // 256) % 2
            assert set(blocks.tolist()) == {cpu}


class TestSimProfileKnobs:
    def test_custom_ref_stride(self):
        config = machine(1)
        arrays = (ArrayDecl("a", 4096),)
        loop = Loop("l", LoopKind.PARALLEL, (PartitionedAccess("a", units=16),))
        layout = layout_arrays(arrays, config.l2.line_size, config.l1d.size)
        schedule = schedule_loop(loop, 1)
        fine = loop_traces(loop, schedule, layout, config,
                           SimProfile(ref_stride=8))
        coarse = loop_traces(loop, schedule, layout, config,
                             SimProfile(ref_stride=64))
        assert len(fine[0]) == 8 * len(coarse[0])

    def test_words_per_ref_tracks_stride(self):
        config = machine(1)
        arrays = (ArrayDecl("a", 4096),)
        loop = Loop("l", LoopKind.PARALLEL, (PartitionedAccess("a", units=16),))
        layout = layout_arrays(arrays, config.l2.line_size, config.l1d.size)
        schedule = schedule_loop(loop, 1)
        traces = loop_traces(loop, schedule, layout, config,
                             SimProfile(ref_stride=64))
        assert traces[0].words_per_ref == 8.0

    def test_default_stride_is_half_line(self):
        config = machine(1)
        assert SimProfile().stride_for(config) == config.l2.line_size // 2

    def test_instruction_base_not_color_aligned(self):
        """The text segment must not share page colors with page-aligned
        data arrays under a page-coloring policy (fpppp's Table 2 row)."""
        config = machine(1)
        arrays = (ArrayDecl("a", 1024),)
        loop = Loop(
            "l", LoopKind.SEQUENTIAL,
            (InstructionStream(footprint_bytes=512),
             PartitionedAccess("a", units=4)),
        )
        _, traces = traces_for(loop, arrays, config)
        instr_addrs = traces[0].addrs[(traces[0].flags & FLAG_INSTR) != 0]
        first_page = int(instr_addrs.min()) // config.page_size
        assert first_page % 16 != 0  # 16 colors on the tiny machine
