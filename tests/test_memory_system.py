"""Tests for the coherent multiprocessor memory system.

These exercise the behaviours the reproduction depends on: the L1/L2
hierarchy, the shadow-cache conflict/capacity split, the Dubois true/false
sharing classification, remote (cache-to-cache) latency, writeback
accounting and R10000 prefetch semantics.
"""

import pytest

from repro.machine.bus import BusTransactionKind
from repro.machine.config import CacheConfig, MachineConfig
from repro.machine.memory_system import MemorySystem
from repro.machine.stats import MissKind


def tiny(num_cpus=2) -> MachineConfig:
    return MachineConfig(
        num_cpus=num_cpus,
        page_size=256,
        l1d=CacheConfig(512, 64, 2),
        l1i=CacheConfig(512, 64, 2),
        l2=CacheConfig(4096, 64, 1),  # 64 lines, 16 colors
    )


def identity_access(ms, cpu, t, addr, write=False, instr=False):
    """Access with identity translation (paddr == vaddr)."""
    return ms.access(cpu, t, addr, addr, write, instr)


class TestHierarchy:
    def test_first_access_is_cold_miss(self):
        ms = MemorySystem(tiny())
        result = identity_access(ms, 0, 0.0, 0)
        assert not result.l1_hit and not result.l2_hit
        assert result.miss_kind is MissKind.COLD
        assert result.stall_ns >= ms.config.mem_latency_ns

    def test_second_access_hits_l1(self):
        ms = MemorySystem(tiny())
        identity_access(ms, 0, 0.0, 0)
        result = identity_access(ms, 0, 100.0, 8)  # same line
        assert result.l1_hit
        assert result.stall_ns == 0.0

    def test_l1_miss_l2_hit_costs_l2_latency(self):
        config = tiny()
        ms = MemorySystem(config)
        identity_access(ms, 0, 0.0, 0)
        # Evict line 0 from the 2-way L1 set without touching L2 set 0:
        # lines 0, 256, 512 share L1 set 0 (L1 has 4 sets of 64B lines).
        identity_access(ms, 0, 1.0, 256)
        identity_access(ms, 0, 2.0, 512)
        result = identity_access(ms, 0, 3.0, 0)
        assert not result.l1_hit
        assert result.l2_hit
        assert result.stall_ns == pytest.approx(config.l2_hit_ns)

    def test_instruction_fetches_use_l1i(self):
        ms = MemorySystem(tiny())
        identity_access(ms, 0, 0.0, 0, instr=True)
        stats = ms.stats.cpus[0]
        assert stats.l1i_misses == 1
        assert stats.l1d_misses == 0
        result = identity_access(ms, 0, 1.0, 0, instr=True)
        assert result.l1_hit
        assert ms.stats.cpus[0].l1i_hits == 1

    def test_tlb_miss_charges_kernel_time(self):
        config = tiny()
        ms = MemorySystem(config)
        result = identity_access(ms, 0, 0.0, 0)
        assert result.kernel_ns == pytest.approx(config.tlb.miss_latency_ns)
        result = identity_access(ms, 0, 1.0, 8)
        assert result.kernel_ns == 0.0


class TestMissClassification:
    def test_conflict_miss_same_color(self):
        config = tiny()
        ms = MemorySystem(config)
        # Three lines one L2-cache-size apart conflict in the direct-mapped
        # L2 (and overflow the 2-way L1 set) but coexist in the
        # fully-associative shadow.
        identity_access(ms, 0, 0.0, 0)
        identity_access(ms, 0, 1.0, 4096)
        identity_access(ms, 0, 2.0, 8192)
        result = identity_access(ms, 0, 3.0, 0)
        assert result.miss_kind is MissKind.CONFLICT

    def test_capacity_miss_when_footprint_exceeds_cache(self):
        config = tiny()
        ms = MemorySystem(config)
        lines = config.l2.num_lines
        # Stream through 2x the cache, twice: second pass misses everywhere,
        # and the shadow has also evicted, so they classify as capacity.
        for sweep in range(2):
            for i in range(2 * lines):
                identity_access(ms, 0, float(i), i * 64)
        stats = ms.stats.cpus[0]
        assert stats.l2_misses[MissKind.CAPACITY] > 0
        assert stats.l2_misses[MissKind.CONFLICT] == 0

    def test_cold_counted_once_per_line_per_cpu(self):
        ms = MemorySystem(tiny())
        identity_access(ms, 0, 0.0, 0)
        identity_access(ms, 1, 1.0, 0)
        assert ms.stats.cpus[0].l2_misses[MissKind.COLD] == 1
        assert ms.stats.cpus[1].l2_misses[MissKind.COLD] == 1


class TestCoherence:
    def test_write_invalidates_other_copies(self):
        ms = MemorySystem(tiny())
        identity_access(ms, 0, 0.0, 0)
        identity_access(ms, 1, 1.0, 0)
        identity_access(ms, 0, 2.0, 0, write=True)
        sharers, dirty = ms.line_state(0)
        assert sharers == frozenset({0})
        assert dirty == 0

    def test_true_sharing_miss(self):
        ms = MemorySystem(tiny())
        identity_access(ms, 1, 0.0, 0)  # CPU 1 caches the line
        identity_access(ms, 0, 1.0, 0, write=True)  # CPU 0 writes word 0
        result = identity_access(ms, 1, 2.0, 0)  # CPU 1 re-reads word 0
        assert result.miss_kind is MissKind.TRUE_SHARING

    def test_false_sharing_miss(self):
        ms = MemorySystem(tiny())
        identity_access(ms, 1, 0.0, 8)  # CPU 1 caches the line (word 1)
        identity_access(ms, 0, 1.0, 0, write=True)  # CPU 0 writes word 0
        result = identity_access(ms, 1, 2.0, 8)  # CPU 1 reads word 1
        assert result.miss_kind is MissKind.FALSE_SHARING

    def test_accumulated_writes_count_as_true_sharing(self):
        # Dubois: all words written since the reader's last access count.
        ms = MemorySystem(tiny())
        identity_access(ms, 1, 0.0, 16)  # caches line, word 2
        identity_access(ms, 0, 1.0, 0, write=True)  # word 0
        identity_access(ms, 0, 2.0, 16, write=True)  # word 2 (line now exclusive)
        result = identity_access(ms, 1, 3.0, 16)
        assert result.miss_kind is MissKind.TRUE_SHARING

    def test_dirty_remote_fetch_costs_remote_latency(self):
        config = tiny()
        ms = MemorySystem(config)
        identity_access(ms, 0, 0.0, 0, write=True)
        result = identity_access(ms, 1, 1.0, 64 * 3)  # unrelated: memory latency
        assert result.stall_ns == pytest.approx(config.mem_latency_ns, abs=200)
        result = identity_access(ms, 1, 2.0, 0)
        assert result.stall_ns >= config.remote_latency_ns

    def test_upgrade_transaction_on_shared_write(self):
        ms = MemorySystem(tiny())
        identity_access(ms, 0, 0.0, 0)
        identity_access(ms, 1, 1.0, 0)
        before = ms.bus.transactions[BusTransactionKind.UPGRADE]
        identity_access(ms, 0, 2.0, 0, write=True)
        assert ms.bus.transactions[BusTransactionKind.UPGRADE] == before + 1

    def test_dirty_eviction_writes_back(self):
        config = tiny()
        ms = MemorySystem(config)
        identity_access(ms, 0, 0.0, 0, write=True)
        before = ms.bus.transactions[BusTransactionKind.WRITEBACK]
        identity_access(ms, 0, 1.0, 4096)  # evicts dirty line 0
        assert ms.bus.transactions[BusTransactionKind.WRITEBACK] == before + 1


class TestPrefetch:
    def prefetched_system(self):
        config = tiny()
        ms = MemorySystem(config)
        # Load the TLB entry for page 0 with a demand access.
        identity_access(ms, 0, 0.0, 0)
        return config, ms

    def test_prefetch_fills_l2_not_l1(self):
        config, ms = self.prefetched_system()
        ms.prefetch(0, 1.0, 128, 128)
        result = identity_access(ms, 0, 10_000.0, 128)
        assert not result.l1_hit  # prefetches bypass the on-chip cache
        assert result.l2_hit
        assert ms.stats.cpus[0].prefetches_useful == 1

    def test_prefetch_dropped_on_tlb_miss(self):
        config, ms = self.prefetched_system()
        far = 100 * config.page_size
        ms.prefetch(0, 1.0, far, far)
        stats = ms.stats.cpus[0]
        assert stats.prefetches_dropped_tlb == 1
        result = identity_access(ms, 0, 10_000.0, far)
        assert not result.l2_hit  # nothing was fetched

    def test_prefetch_to_resident_line_is_noop(self):
        config, ms = self.prefetched_system()
        before = ms.bus.transactions[BusTransactionKind.DATA]
        ms.prefetch(0, 1.0, 0, 0)
        assert ms.bus.transactions[BusTransactionKind.DATA] == before

    def test_early_demand_waits_for_inflight_prefetch(self):
        config, ms = self.prefetched_system()
        ms.prefetch(0, 1.0, 128, 128)
        # Demand access immediately after: must wait out the latency.
        result = identity_access(ms, 0, 2.0, 128)
        assert result.l2_hit
        assert result.stall_ns > config.l2_hit_ns

    def test_fifth_outstanding_prefetch_stalls(self):
        config, ms = self.prefetched_system()
        # Map enough TLB entries with demand accesses first.
        for page in range(1, 3):
            identity_access(ms, 0, 0.5, page * config.page_size)
        targets = (64, 128, 192, 320, 384)  # non-resident, TLB-mapped lines
        total_stall = 0.0
        for addr in targets:
            total_stall += ms.prefetch(0, 1.0, addr, addr)
        assert ms.stats.cpus[0].prefetches_dropped_tlb == 0
        assert total_stall > 0.0
        assert ms.stats.cpus[0].prefetch_stalls == 1


class TestIntrospection:
    def test_l2_utilization(self):
        config = tiny()
        ms = MemorySystem(config)
        for i in range(config.l2.num_lines // 2):
            identity_access(ms, 0, float(i), i * 64)
        assert ms.l2_utilization(0) == pytest.approx(0.5)

    def test_tlb_stats(self):
        ms = MemorySystem(tiny())
        identity_access(ms, 0, 0.0, 0)
        identity_access(ms, 0, 1.0, 8)
        hits, misses = ms.tlb_stats(0)
        assert (hits, misses) == (1, 1)
