"""Tests for access maps, SPEC ratios and table rendering."""

import pytest

from repro.analysis.access_maps import (
    coloring_order_map,
    conflict_depth,
    footprint_density,
    page_access_map,
    va_order_map,
)
from repro.analysis.report import render_table
from repro.analysis.spec_ratio import geometric_mean, spec_ratio, specfp_rating
from repro.core.access_summary import AccessSummary, ArrayPartitioning
from repro.core.coloring import generate_page_colors

PAGE = 256


def spread_summary(num_arrays=3, pages=16) -> AccessSummary:
    """Arrays laid out consecutively, partitioned across CPUs.

    In VA order each CPU's pages form stripes (one per array) — the sparse
    Figure 3 pattern; the CDPC order groups them — the dense Figure 5 one.
    """
    summary = AccessSummary()
    for i in range(num_arrays):
        summary.partitionings.append(
            ArrayPartitioning(f"a{i}", i * pages * PAGE, pages * PAGE, PAGE)
        )
        for j in range(i):
            summary.add_group(f"a{j}", f"a{i}")
    return summary


class TestAccessMaps:
    def test_page_access_map_covers_all_pages(self):
        summary = spread_summary(3, 16)
        amap = page_access_map(summary, PAGE, 4)
        assert len(amap) == 48
        assert amap[0] == frozenset({0})
        assert amap[4] == frozenset({1})

    def test_va_order_sorted(self):
        summary = spread_summary(2, 8)
        ordered = va_order_map(page_access_map(summary, PAGE, 2))
        assert [page for page, _ in ordered] == sorted(p for p, _ in ordered)

    def test_coloring_order_compacts_footprints(self):
        # The quantitative claim behind Figures 3 vs 5: per-CPU density is
        # much higher in coloring order than in VA order.
        summary = spread_summary(4, 32)
        amap = page_access_map(summary, PAGE, 8)
        coloring = generate_page_colors(summary, PAGE, 64, 8)
        va = va_order_map(amap)
        cdpc = coloring_order_map(coloring, amap)
        for cpu in range(8):
            assert footprint_density(cdpc, cpu) > 2 * footprint_density(va, cpu)

    def test_footprint_density_bounds(self):
        ordered = [(0, frozenset({0})), (1, frozenset()), (2, frozenset({0}))]
        assert footprint_density(ordered, 0) == pytest.approx(2 / 3)
        assert footprint_density(ordered, 5) == 0.0

    def test_conflict_depth_one_for_cdpc_when_fits(self):
        summary = spread_summary(4, 32)
        amap = page_access_map(summary, PAGE, 8)
        coloring = generate_page_colors(summary, PAGE, 64, 8)
        assert conflict_depth(coloring.colors, amap, 64) == 1

    def test_conflict_depth_counts_page_coloring_collisions(self):
        # Page-coloring policy on color-cycle-sized arrays: every array's
        # page j has the same color, so depth equals the array count.
        summary = spread_summary(4, 16)
        amap = page_access_map(summary, PAGE, 2)
        pc_colors = {page: page % 16 for page in amap}
        assert conflict_depth(pc_colors, amap, 16) == 4

    def test_conflict_depth_ignores_unhinted_pages(self):
        amap = {0: frozenset({0}), 1: frozenset({0})}
        assert conflict_depth({0: 3}, amap, 8) == 1


class TestSpecRatio:
    def test_ratio(self):
        assert spec_ratio(3700.0, 100.0) == 37.0
        with pytest.raises(ValueError):
            spec_ratio(3700.0, 0.0)
        with pytest.raises(ValueError):
            spec_ratio(0.0, 1.0)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([5.0]) == pytest.approx(5.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_specfp_rating(self):
        ratios = {"a": 2.0, "b": 8.0}
        assert specfp_rating(ratios) == pytest.approx(4.0)

    def test_paper_style_comparison(self):
        # CDPC +20% over page coloring is a rating ratio of 1.2.
        pc = {"a": 10.0, "b": 10.0}
        cdpc = {"a": 12.0, "b": 12.0}
        assert specfp_rating(cdpc) / specfp_rating(pc) == pytest.approx(1.2)


class TestReport:
    def test_render_table_aligns_columns(self):
        table = render_table(
            ["bench", "ratio"], [["tomcatv", 1.5], ["swim", 12.25]]
        )
        lines = table.splitlines()
        assert len(lines) == 4
        assert "tomcatv" in lines[2]
        assert "12.250" in lines[3]
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all rows equally wide


class TestSparklineIntegration:
    def test_mcpi_trend_renders(self):
        from repro.analysis.figures import sparkline

        # The Figure 2 usage: MCPI rising with processor count.
        line = sparkline([3.8, 5.1, 7.7, 12.7, 19.6])
        assert len(line) == 5
        assert line[0] == "▁" and line[-1] == "█"
