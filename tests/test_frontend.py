"""Tests for the text frontend (parse + round-trip)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import Communication, Direction, Partitioning
from repro.compiler.frontend import FrontendError, format_program, parse_program
from repro.compiler.ir import (
    BoundaryAccess,
    InitOrder,
    InstructionStream,
    LoopKind,
    PartitionedAccess,
    StridedAccess,
    WholeArrayAccess,
)

EXAMPLE = """
# A red/black solver.
program redblack
sequential_fraction 0.02
init_groups (red black) (coeff)

array red 4194304
array black 4194304
array coeff 262144 element 4

phase sweep occurrences 10
  parallel loop relax ipw 5.0
    write red partitioned units 256
    read black partitioned units 256 blocked reverse fraction 0.5 sweeps 2.0
    read black boundary units 256 shift 1.0
    read coeff whole fraction 0.25
  suppressed loop tail ipw 3.0 tiled iterations 33
    read coeff strided block 2048 sweeps 2.0
    instr 98304 sweeps 2.0
"""


class TestParse:
    def test_program_header(self):
        program = parse_program(EXAMPLE)
        assert program.name == "redblack"
        assert program.sequential_fraction == 0.02
        assert program.init_groups == (("red", "black"), ("coeff",))

    def test_arrays(self):
        program = parse_program(EXAMPLE)
        assert [a.name for a in program.arrays] == ["red", "black", "coeff"]
        assert program.array("coeff").element_size == 4

    def test_phase_and_loops(self):
        program = parse_program(EXAMPLE)
        phase = program.phases[0]
        assert phase.occurrences == 10
        relax, tail = phase.loops
        assert relax.kind is LoopKind.PARALLEL
        assert relax.instructions_per_word == 5.0
        assert tail.kind is LoopKind.SUPPRESSED
        assert tail.tiled
        assert tail.iterations == 33

    def test_access_shapes(self):
        program = parse_program(EXAMPLE)
        relax = program.phases[0].loops[0]
        write_red, read_black, boundary, whole = relax.accesses
        assert isinstance(write_red, PartitionedAccess) and write_red.is_write
        assert read_black.partitioning is Partitioning.BLOCKED
        assert read_black.direction is Direction.REVERSE
        assert read_black.fraction == 0.5 and read_black.sweeps == 2.0
        assert isinstance(boundary, BoundaryAccess)
        assert boundary.comm is Communication.SHIFT
        assert isinstance(whole, WholeArrayAccess) and whole.fraction == 0.25
        tail = program.phases[0].loops[1]
        strided, instr = tail.accesses
        assert isinstance(strided, StridedAccess) and strided.block_bytes == 2048
        assert isinstance(instr, InstructionStream)
        assert instr.footprint_bytes == 98304

    def test_init_order_directive(self):
        program = parse_program(
            "program p\ninit_order sequential\narray a 4096\n"
            "phase q\n  parallel loop l\n    read a partitioned units 4\n"
        )
        assert program.init_order is InitOrder.SEQUENTIAL

    def test_comments_and_blank_lines_ignored(self):
        program = parse_program(
            "# header\nprogram p\n\narray a 4096  # bytes\n"
            "phase q occurrences 2\n  parallel loop l\n"
            "    read a partitioned units 4\n"
        )
        assert program.phases[0].occurrences == 2


class TestErrors:
    def error(self, text):
        with pytest.raises(FrontendError) as excinfo:
            parse_program(text)
        return str(excinfo.value)

    def test_missing_program_name(self):
        msg = self.error("array a 4096\nphase q\n  parallel loop l\n"
                         "    read a partitioned units 4\n")
        assert "program NAME" in msg

    def test_loop_outside_phase(self):
        msg = self.error("program p\narray a 4096\n  parallel loop l\n")
        assert "outside of a phase" in msg

    def test_access_outside_loop(self):
        msg = self.error("program p\narray a 4096\nphase q\n"
                         "    read a partitioned units 4\n")
        assert "outside of a loop" in msg

    def test_empty_loop(self):
        msg = self.error("program p\narray a 4096\nphase q\n"
                         "  parallel loop l\n  parallel loop m\n"
                         "    read a partitioned units 4\n")
        assert "no accesses" in msg

    def test_unknown_directive_reports_line(self):
        msg = self.error("program p\nfrobnicate 3\n")
        assert "line 2" in msg

    def test_unknown_access_shape(self):
        msg = self.error("program p\narray a 4096\nphase q\n"
                         "  parallel loop l\n    read a diagonal units 4\n")
        assert "unknown access shape" in msg

    def test_unclosed_group(self):
        msg = self.error("program p\ninit_groups (a b\narray a 4096\n"
                         "phase q\n  parallel loop l\n"
                         "    read a partitioned units 4\n")
        assert "unclosed" in msg

    def test_unknown_array_in_access_rejected_by_ir(self):
        msg = self.error("program p\narray a 4096\nphase q\n"
                         "  parallel loop l\n    read zzz partitioned units 4\n")
        assert "unknown array" in msg


class TestRoundTrip:
    def test_example_round_trips(self):
        program = parse_program(EXAMPLE)
        assert parse_program(format_program(program)) == program

    @pytest.mark.parametrize(
        "name",
        ["tomcatv", "swim", "su2cor", "hydro2d", "mgrid", "applu", "turb3d",
         "apsi", "fpppp", "wave5"],
    )
    def test_every_workload_round_trips(self, name):
        from repro.workloads import get_workload

        program = get_workload(name).program
        assert parse_program(format_program(program)) == program


class TestWorkloadFiles:
    """The shipped .workload files stay in sync with the registry."""

    @pytest.mark.parametrize(
        "name",
        ["tomcatv", "swim", "su2cor", "hydro2d", "mgrid", "applu", "turb3d",
         "apsi", "fpppp", "wave5"],
    )
    def test_workload_file_matches_registry(self, name):
        import pathlib

        from repro.workloads import get_workload

        path = (pathlib.Path(__file__).parent.parent / "examples" /
                "workloads" / f"{name}.workload")
        program = parse_program(path.read_text())
        assert program == get_workload(name).program

    def test_redblack_file_parses(self):
        import pathlib

        path = (pathlib.Path(__file__).parent.parent / "examples" /
                "workloads" / "redblack.workload")
        program = parse_program(path.read_text())
        assert program.name == "redblack"


# ----------------------------------------------------------------------
# Property-based round-trip over randomly generated programs


_names = st.sampled_from(["alpha", "beta", "gamma", "delta", "eps"])


@st.composite
def _accesses(draw, arrays):
    array = draw(st.sampled_from(arrays))
    kind = draw(st.integers(0, 4))
    write = draw(st.booleans())
    if kind == 0:
        return PartitionedAccess(
            array,
            units=draw(st.integers(1, 64)),
            is_write=write,
            partitioning=draw(st.sampled_from(list(Partitioning))),
            direction=draw(st.sampled_from(list(Direction))),
            fraction=draw(st.sampled_from([0.25, 0.5, 1.0])),
            sweeps=draw(st.sampled_from([1.0, 2.0, 3.5])),
        )
    if kind == 1:
        return BoundaryAccess(
            array,
            units=draw(st.integers(1, 64)),
            comm=draw(st.sampled_from(
                [Communication.SHIFT, Communication.ROTATE])),
            boundary_fraction=draw(st.sampled_from([0.125, 0.5, 1.0])),
            is_write=write,
        )
    if kind == 2:
        return StridedAccess(
            array,
            block_bytes=draw(st.sampled_from([64, 256, 2048])),
            is_write=write,
            sweeps=draw(st.sampled_from([1.0, 2.0])),
        )
    if kind == 3:
        return WholeArrayAccess(
            array,
            is_write=write,
            fraction=draw(st.sampled_from([0.5, 1.0])),
            sweeps=draw(st.sampled_from([1.0, 1.5])),
        )
    return InstructionStream(
        footprint_bytes=draw(st.sampled_from([1024, 65536])),
        sweeps=draw(st.sampled_from([1.0, 4.0])),
    )


@st.composite
def _programs(draw):
    from repro.compiler.ir import (
        ArrayDecl, InitOrder, Loop, LoopKind, Phase, Program,
    )

    names = draw(st.lists(_names, min_size=1, max_size=4, unique=True))
    arrays = tuple(
        ArrayDecl(n, draw(st.sampled_from([4096, 65536, 1048576])))
        for n in names
    )
    phases = []
    for p in range(draw(st.integers(1, 3))):
        loops = []
        for l in range(draw(st.integers(1, 2))):
            accesses = tuple(
                draw(_accesses(list(names)))
                for _ in range(draw(st.integers(1, 3)))
            )
            loops.append(
                Loop(
                    f"loop{p}_{l}",
                    draw(st.sampled_from(list(LoopKind))),
                    accesses,
                    iterations=draw(st.one_of(st.none(), st.integers(1, 100))),
                    instructions_per_word=draw(st.sampled_from([2.0, 5.5])),
                    tiled=draw(st.booleans()),
                )
            )
        phases.append(
            Phase(f"phase{p}", tuple(loops),
                  occurrences=draw(st.integers(1, 20)),
                  miss_variation=draw(st.sampled_from([0.0, 0.25])))
        )
    return Program(
        name="generated",
        arrays=arrays,
        phases=tuple(phases),
        init_order=draw(st.sampled_from(list(InitOrder))),
        sequential_fraction=draw(st.sampled_from([0.0, 0.1])),
    )


class TestRoundTripProperty:
    @given(_programs())
    @settings(max_examples=60, deadline=None)
    def test_random_programs_round_trip(self, program):
        assert parse_program(format_program(program)) == program
