"""Columnar epoch kernel: bit-identity with the scalar filter and oracle.

The main equivalence suite (``test_fast_path_equivalence``) runs with the
columnar kernel on by default; this module pins the remaining corners:
the scalar filter (``columnar=False``) still matches the oracle, and the
columnar kernel matches the oracle on *randomized* programs — hypothesis
explores loop kinds, access mixes, array shapes and processor counts the
bundled workloads never produce (blocks straddling chunk ends, single
-reference tails, all-write blocks, suppressed loops).
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.ir import (
    ArrayDecl,
    InitOrder,
    Loop,
    LoopKind,
    PartitionedAccess,
    Phase,
    Program,
)
from repro.machine.config import sgi_base
from repro.sim.engine import EngineOptions, run_benchmark, run_program
from repro.sim.tracegen import SimProfile

from tests.test_fast_path_equivalence import VARIANTS
from tests.test_sim_engine import tiny_machine

CONFIG = sgi_base(4).scaled(16)


@pytest.mark.parametrize(
    "label", ["page_coloring", "cdpc", "prefetch_fills_tlb", "fault_race"]
)
def test_scalar_filter_still_matches_oracle(label):
    """``columnar=False`` selects the per-reference scalar filter."""
    base = EngineOptions(profile=SimProfile.fast(), **VARIANTS[label])
    scalar = run_benchmark(
        "tomcatv", CONFIG,
        replace(base, fast_path=True, columnar=False, trace_cache=True),
    )
    reference = run_benchmark(
        "tomcatv", CONFIG,
        replace(base, fast_path=False, trace_cache=False),
    )
    assert scalar.to_dict() == reference.to_dict()


def test_columnar_is_the_default():
    assert EngineOptions().columnar


@st.composite
def programs(draw):
    """Small random programs over a few arrays and loop shapes."""
    num_arrays = draw(st.integers(1, 3))
    names = [f"a{i}" for i in range(num_arrays)]
    arrays = tuple(
        ArrayDecl(name, draw(st.integers(1, 6)) * 256) for name in names
    )
    loops = []
    for li in range(draw(st.integers(1, 3))):
        accesses = tuple(
            PartitionedAccess(
                draw(st.sampled_from(names)),
                units=draw(st.integers(1, 4)),
                is_write=draw(st.booleans()),
                sweeps=draw(st.sampled_from([1.0, 2.0])),
                fraction=draw(st.sampled_from([0.5, 1.0])),
            )
            for _ in range(draw(st.integers(1, num_arrays)))
        )
        loops.append(
            Loop(f"l{li}", draw(st.sampled_from(list(LoopKind))), accesses)
        )
    phases = (
        Phase("steady", tuple(loops), occurrences=draw(st.integers(1, 2))),
    )
    return Program(
        "rand", arrays, phases,
        init_order=draw(st.sampled_from(list(InitOrder))),
    )


class TestColumnarProperty:
    @settings(max_examples=15, deadline=None)
    @given(programs(), st.integers(1, 4))
    def test_columnar_bit_identical_on_random_programs(self, program, num_cpus):
        config = tiny_machine(num_cpus)
        columnar = run_program(
            program, config,
            EngineOptions(fast_path=True, columnar=True, trace_cache=False),
        )
        oracle = run_program(
            program, config,
            EngineOptions(fast_path=False, trace_cache=False),
        )
        assert columnar.to_dict() == oracle.to_dict()
