"""Trace cache: hits on identical inputs, invalidation on any change."""

from __future__ import annotations

from repro.machine.config import sgi_base
from repro.sim.engine import EngineOptions, run_benchmark
from repro.sim.trace_cache import TraceCache, default_trace_cache, trace_key
from repro.sim.tracegen import SimProfile

FAST = EngineOptions(profile=SimProfile.fast())
CONFIG = sgi_base(2).scaled(16)


class TestTraceCacheUnit:
    def test_miss_generates_then_hits(self):
        cache = TraceCache()
        calls = []
        key = ("schedule", "layout", "config", "profile", None, 1.0)
        first = cache.get_or_generate(key, lambda: calls.append(1) or ["trace"])
        second = cache.get_or_generate(key, lambda: calls.append(1) or ["other"])
        assert first is second
        assert calls == [1]
        assert cache.stats() == {
            "entries": 1, "hits": 1, "misses": 1, "evictions": 0,
            "columnar_indexes": 0, "window_plans": 0,
        }

    def test_lru_eviction(self):
        cache = TraceCache(max_entries=2)
        for name in ("a", "b", "c"):
            cache.get_or_generate((name,), lambda name=name: [name])
        assert cache.evictions == 1
        assert ("a",) not in cache  # least recently used
        assert ("b",) in cache and ("c",) in cache

    def test_clear_drops_entries_and_keeps_counters(self):
        cache = TraceCache()
        cache.get_or_generate(("k",), lambda: ["t"])
        cache.clear()
        assert len(cache) == 0
        assert cache.misses == 1
        cache.reset_counters()
        assert cache.stats() == {
            "entries": 0, "hits": 0, "misses": 0, "evictions": 0,
            "columnar_indexes": 0, "window_plans": 0,
        }

    def test_key_varies_with_every_fingerprint_component(self):
        base = trace_key("sched", "layout", "config", "profile", None, 1.0)
        assert base != trace_key("sched2", "layout", "config", "profile", None, 1.0)
        assert base != trace_key("sched", "layout2", "config", "profile", None, 1.0)
        assert base != trace_key("sched", "layout", "config", "fast", None, 1.0)
        assert base != trace_key("sched", "layout", "config", "profile", ("pf",), 1.0)
        # Occurrence-dependent fraction scale invalidates too.
        assert base != trace_key("sched", "layout", "config", "profile", None, 0.5)


class TestTraceCacheEngine:
    def _fresh(self):
        cache = default_trace_cache()
        cache.clear()
        cache.reset_counters()
        return cache

    def test_repeat_run_hits_without_new_misses(self):
        cache = self._fresh()
        run_benchmark("fpppp", CONFIG, FAST)
        misses = cache.misses
        assert misses > 0
        run_benchmark("fpppp", CONFIG, FAST)
        assert cache.misses == misses  # every trace reused
        assert cache.hits > 0

    def test_layout_change_invalidates(self):
        cache = self._fresh()
        run_benchmark("fpppp", CONFIG, FAST)
        misses = cache.misses
        # An unaligned layout has different array bases: new keys, no reuse.
        run_benchmark("fpppp", CONFIG, FAST, aligned=False)
        assert cache.misses > misses

    def test_profile_change_invalidates(self):
        cache = self._fresh()
        run_benchmark("fpppp", CONFIG, FAST)
        misses = cache.misses
        run_benchmark("fpppp", CONFIG, FAST, profile=SimProfile())
        assert cache.misses > misses

    def test_census_counts_columnar_indexes_and_window_plans(self):
        cache = self._fresh()
        run_benchmark("fpppp", CONFIG, FAST, sampling="access_vector")
        stats = cache.stats()
        # The columnar kernel memoizes a block index on every stream it
        # runs, and the sampler memoizes a window plan on every trace;
        # both ride on the cached traces and show up in the census.
        assert stats["columnar_indexes"] > 0
        assert stats["window_plans"] > 0

    def test_disabled_cache_is_untouched(self):
        cache = self._fresh()
        run_benchmark("fpppp", CONFIG, FAST, trace_cache=False)
        assert cache.stats() == {
            "entries": 0, "hits": 0, "misses": 0, "evictions": 0,
            "columnar_indexes": 0, "window_plans": 0,
        }


class TestTraceCacheConcurrency:
    """The service's batcher shares the process-wide cache across worker
    threads; the lock must keep the LRU list and counters consistent."""

    def test_concurrent_mixed_keys_account_every_access(self):
        import threading

        cache = TraceCache(max_entries=8)
        threads_n, per_thread, keyspace = 8, 300, 24
        generated = []
        generated_lock = threading.Lock()

        def worker(seed):
            rng = __import__("random").Random(seed)
            for _ in range(per_thread):
                key = ("k", rng.randrange(keyspace))
                value = cache.get_or_generate(key, lambda k=key: [k])
                assert value[0] == key  # never a wrong answer
                with generated_lock:
                    generated.append(key)

        threads = [
            threading.Thread(target=worker, args=(seed,))
            for seed in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = cache.stats()
        total = threads_n * per_thread
        # Every access is either a hit or a miss — none lost to a race.
        assert stats["hits"] + stats["misses"] == total
        # Eviction kept the entry count bounded despite the churn.
        assert stats["entries"] <= 8
        assert stats["misses"] >= stats["evictions"] + stats["entries"]

    def test_concurrent_same_key_shares_one_object(self):
        import threading

        cache = TraceCache(max_entries=4)
        barrier = threading.Barrier(6)
        results = []
        results_lock = threading.Lock()
        generations = []

        def generate():
            with results_lock:
                generations.append(1)
            return [object()]

        def worker():
            barrier.wait()
            value = cache.get_or_generate(("hot",), generate)
            with results_lock:
                results.append(value)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # All callers converged on one shared trace list, even if several
        # threads generated concurrently (first insertion wins).
        assert len({id(value) for value in results}) == 1
        assert cache.hits + cache.misses == 6
        assert cache.misses == len(generations)

    def test_eviction_under_concurrent_insert_never_overflows(self):
        import threading

        cache = TraceCache(max_entries=2)

        def worker(base):
            for i in range(200):
                cache.get_or_generate((base, i), lambda: [None])

        threads = [threading.Thread(target=worker, args=(b,)) for b in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) <= 2
        assert cache.evictions == cache.misses - len(cache)
