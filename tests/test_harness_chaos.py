"""Chaos suite: SIGKILL a worker mid-sweep and prove nothing is lost.

The acceptance bar for the harness (ISSUE 4):

a) killing a worker mid-sweep loses **zero** completed results — every
   finished run is already durable in the store;
b) ``resume`` re-runs **only** the missing tasks;
c) the reassembled results dict is **byte-identical** to the
   ``max_workers=1`` serial oracle.

The killer task function wraps the real sweep runner
(:func:`repro.sim.sweeps._run_task`): the first attempt at the marked
task SIGKILLs its own worker process (the hardest crash there is — no
cleanup, no exception, the pool just breaks), later attempts run the real
benchmark.  Execution counts are tracked with marker files so "re-runs
only missing tasks" is asserted, not assumed.
"""

import os
import signal
from dataclasses import replace
from pathlib import Path

from repro.harness import CampaignOptions, ResultStore, RetryPolicy, run_campaign
from repro.harness.store import task_fingerprint
from repro.machine.config import sgi_base
from repro.sim.engine import EngineOptions
from repro.sim.sweeps import (
    STANDARD_POLICIES,
    _run_task,
    policy_sweep,
    run_task_campaign,
)
from repro.sim.tracegen import SimProfile

FAST = EngineOptions(profile=SimProfile.fast())
RETRY = RetryPolicy(max_attempts=3, backoff_s=0.01, max_backoff_s=0.05)


def _sweep_tasks(workload="fpppp", cpus=2):
    config = sgi_base(cpus).scaled(16)
    labels = list(STANDARD_POLICIES)
    tasks = [
        (workload, config, replace(FAST, **overrides))
        for overrides in STANDARD_POLICIES.values()
    ]
    return labels, tasks


def chaos_run(task):
    """Run one sweep task, SIGKILLing the worker on the marked attempt."""
    (workload, config, options), scratch, victim = task
    label = options.policy + ("+cdpc" if options.cdpc else "")
    ran = Path(scratch) / f"ran_{label}"
    ran.write_text(str(int(ran.read_text()) + 1 if ran.exists() else 1))
    if label == victim:
        kill_marker = Path(scratch) / f"killed_{label}"
        if not kill_marker.exists():
            kill_marker.write_text("")
            os.kill(os.getpid(), signal.SIGKILL)
    return _run_task((workload, config, options))


def _runs(scratch, label):
    marker = Path(scratch) / f"ran_{label}"
    return int(marker.read_text()) if marker.exists() else 0


class TestWorkerKillMidSweep:
    def test_sigkill_loses_nothing_and_matches_serial_oracle(self, tmp_path):
        labels, sweep_tasks = _sweep_tasks()
        scratch = str(tmp_path / "scratch")
        os.makedirs(scratch)
        store_dir = tmp_path / "store"
        chaos_tasks = [(task, scratch, "bin_hopping") for task in sweep_tasks]
        keys = [task_fingerprint(task) for task in sweep_tasks]

        campaign = run_campaign(
            chaos_run,
            chaos_tasks,
            labels=labels,
            keys=keys,
            options=CampaignOptions(store=str(store_dir), retry=RETRY),
            max_workers=2,
        )

        # The campaign survived the murder and completed everything.
        assert campaign.report.ok, campaign.report.summary()
        assert campaign.report.pool_restarts >= 1
        assert campaign.report.failed_attempts.get("crash", 0) >= 1
        assert all(result is not None for result in campaign.results)

        # (a) zero completed results lost: every result is durable.
        store = ResultStore(store_dir)
        for key in keys:
            assert store.get(key) is not None

        # (c) byte-identical to the serial oracle.
        oracle = policy_sweep(
            "fpppp", sgi_base(2).scaled(16), options=FAST, max_workers=1
        )
        for label, result in zip(labels, campaign.results):
            assert result.to_dict() == oracle[label].to_dict()

    def test_resume_runs_only_missing_tasks(self, tmp_path):
        labels, sweep_tasks = _sweep_tasks()
        scratch = str(tmp_path / "scratch")
        os.makedirs(scratch)
        store_dir = str(tmp_path / "store")
        keys = [task_fingerprint(task) for task in sweep_tasks]
        options = CampaignOptions(store=store_dir, retry=RETRY)
        chaos_tasks = [(task, scratch, "nobody") for task in sweep_tasks]

        # Seed the store with the first two tasks only.
        first = run_campaign(
            chaos_run,
            chaos_tasks[:2],
            labels=labels[:2],
            keys=keys[:2],
            options=options,
            max_workers=1,
        )
        assert first.report.executed == 2

        # (b) the full campaign re-runs only the third task.
        second = run_campaign(
            chaos_run,
            chaos_tasks,
            labels=labels,
            keys=keys,
            options=options,
            max_workers=2,
        )
        assert second.report.loaded == 2
        assert second.report.executed == 1
        assert _runs(scratch, "page_coloring") == 1
        assert _runs(scratch, "bin_hopping") == 1
        assert _runs(scratch, "bin_hopping+cdpc") == 1

        # Resumed + fresh results still equal the serial oracle exactly.
        oracle = policy_sweep(
            "fpppp", sgi_base(2).scaled(16), options=FAST, max_workers=1
        )
        for label, result in zip(labels, second.results):
            assert result.to_dict() == oracle[label].to_dict()

    def test_kill_then_resume_end_to_end(self, tmp_path):
        """The full crash story: kill → partial store → resume → oracle."""
        labels, sweep_tasks = _sweep_tasks()
        scratch = str(tmp_path / "scratch")
        os.makedirs(scratch)
        store_dir = str(tmp_path / "store")
        keys = [task_fingerprint(task) for task in sweep_tasks]
        chaos_tasks = [(task, scratch, "page_coloring") for task in sweep_tasks]

        # First campaign: no retries at all, so the murdered task FAILS
        # and the campaign degrades gracefully to the completed subset.
        first = run_campaign(
            chaos_run,
            chaos_tasks,
            labels=labels,
            keys=keys,
            options=CampaignOptions(
                store=store_dir, retry=RetryPolicy(max_attempts=1)
            ),
            max_workers=2,
        )
        assert not first.report.ok
        assert first.report.failure_counts().get("crash", 0) >= 1
        survivors = [i for i, r in enumerate(first.results) if r is not None]
        assert survivors  # the sweep was not a total loss
        store = ResultStore(store_dir)
        for index in survivors:
            assert store.get(keys[index]) is not None

        # Resume: only the failed task re-runs; the dict is whole again.
        second = run_campaign(
            chaos_run,
            chaos_tasks,
            labels=labels,
            keys=keys,
            options=CampaignOptions(store=store_dir, retry=RETRY),
            max_workers=2,
        )
        assert second.report.ok
        assert second.report.loaded == len(survivors)
        assert second.report.executed == len(labels) - len(survivors)
        oracle = policy_sweep(
            "fpppp", sgi_base(2).scaled(16), options=FAST, max_workers=1
        )
        for label, result in zip(labels, second.results):
            assert result.to_dict() == oracle[label].to_dict()


class TestSweepCampaignDurability:
    def test_run_task_campaign_persists_and_resumes(self, tmp_path):
        """The sweep-level entry point wires fingerprints itself."""
        _, sweep_tasks = _sweep_tasks()
        store = str(tmp_path / "store")
        first = run_task_campaign(
            sweep_tasks, max_workers=1,
            campaign=CampaignOptions(store=store, strict=True),
        )
        assert first.report.executed == len(sweep_tasks)
        second = run_task_campaign(
            sweep_tasks, max_workers=1,
            campaign=CampaignOptions(store=store, strict=True),
        )
        assert second.report.loaded == len(sweep_tasks)
        assert second.report.executed == 0
        for a, b in zip(first.results, second.results):
            assert a.to_dict() == b.to_dict()
