"""Tests for the dynamic page-recoloring extension."""

from repro.machine.config import CacheConfig, MachineConfig
from repro.machine.memory_system import MemorySystem
from repro.osmodel.dynamic import DynamicRecolorer
from repro.osmodel.policies import PageColoringPolicy
from repro.osmodel.vm import VirtualMemory


def machine(num_cpus=2) -> MachineConfig:
    return MachineConfig(
        num_cpus=num_cpus,
        page_size=256,
        l1d=CacheConfig(512, 64, 2),
        l1i=CacheConfig(512, 64, 2),
        l2=CacheConfig(4096, 64, 1),  # 16 colors
    )


def build(num_cpus=2):
    config = machine(num_cpus)
    vm = VirtualMemory(config, PageColoringPolicy(config.num_colors))
    ms = MemorySystem(config)
    recolorer = DynamicRecolorer(vm, ms, threshold=2, max_per_step=4)
    return config, vm, ms, recolorer


def provoke_conflicts(config, vm, ms, vpages):
    """Map pages to the same color and thrash between them."""
    for vpage in vpages:
        vm.ensure_mapped(vpage)
    for _ in range(8):
        for vpage in vpages:
            addr = vpage * config.page_size
            ms.access(0, 0.0, addr, vm.translate(addr), is_write=False)


class TestFrameConflictCounters:
    def test_counters_accumulate_and_reset(self):
        config, vm, ms, _ = build()
        # Pages 0 and 16 share color 0 under page coloring.
        provoke_conflicts(config, vm, ms, [0, 16, 32])
        counters = ms.consume_frame_conflicts()
        assert counters and all(v > 0 for v in counters.values())
        assert ms.consume_frame_conflicts() == {}

    def test_invalidate_frame_purges_lines(self):
        config, vm, ms, _ = build()
        vm.ensure_mapped(0)
        paddr = vm.translate(0)
        ms.access(0, 0.0, 0, paddr, False)
        ms.invalidate_frame(paddr // config.page_size)
        sharers, dirty = ms.line_state(paddr)
        assert not sharers and dirty is None


class TestRecolorer:
    def test_step_migrates_conflicting_page(self):
        config, vm, ms, recolorer = build()
        provoke_conflicts(config, vm, ms, [0, 16, 32])
        old_colors = [vm.color_of_vpage(v) for v in (0, 16, 32)]
        assert len(set(old_colors)) == 1  # all on color 0
        events, cost = recolorer.step(0.0)
        assert events
        assert cost > 0
        migrated = {e.vpage for e in events}
        # At least one of the pages moved to a different color.
        new_colors = {vm.color_of_vpage(v) for v in (0, 16, 32)}
        assert len(new_colors) > 1
        for event in events:
            assert vm.page_table.frame_of(event.vpage) == event.new_frame
            assert event.vpage in migrated

    def test_old_frame_returns_to_free_pool(self):
        config, vm, ms, recolorer = build()
        # Three same-color pages: enough to overflow the 2-way L1 set so
        # the conflicts reach the external cache.
        provoke_conflicts(config, vm, ms, [0, 16, 32])
        free_before = vm.physmem.free_frames()
        events, _ = recolorer.step(0.0)
        assert events
        assert vm.physmem.free_frames() == free_before

    def test_threshold_gates_migration(self):
        config, vm, ms, _ = build()
        recolorer = DynamicRecolorer(vm, ms, threshold=10_000)
        provoke_conflicts(config, vm, ms, [0, 16])
        events, cost = recolorer.step(0.0)
        assert events == [] and cost == 0.0

    def test_no_counters_no_cost(self):
        _, _, _, recolorer = build()
        assert recolorer.step(0.0) == ([], 0.0)

    def test_migration_cost_includes_all_processors(self):
        config, vm, ms, recolorer = build(num_cpus=2)
        config8 = machine(8)
        vm8 = VirtualMemory(config8, PageColoringPolicy(config8.num_colors))
        ms8 = MemorySystem(config8)
        recolorer8 = DynamicRecolorer(vm8, ms8)
        assert recolorer8.migration_cost_ns() > recolorer.migration_cost_ns()

    def test_step_survives_allocator_exhaustion(self):
        """OOM mid-migration aborts the interval instead of crashing."""
        config, vm, ms, recolorer = build()
        provoke_conflicts(config, vm, ms, [0, 16, 32])
        mapped_before = dict(vm.page_table.mappings())
        vm.physmem.occupy_fraction(1.0, seed=0)  # drain every free frame
        events, cost = recolorer.step(0.0)
        assert events == [] and cost == 0.0
        assert recolorer.aborted_steps == 1
        # Transactionality: every page is still mapped, exactly as before.
        assert dict(vm.page_table.mappings()) == mapped_before

    def test_aborted_step_reports_degradation(self):
        config, vm, ms, recolorer = build()
        seen = []
        recolorer.on_degradation = lambda kind, detail: seen.append((kind, detail))
        provoke_conflicts(config, vm, ms, [0, 16, 32])
        vm.physmem.occupy_fraction(1.0, seed=0)
        recolorer.step(0.0)
        assert seen and seen[0][0] == "aborted_recolor"
        assert "wanted_color" in seen[0][1]

    def test_step_resumes_after_pressure_lifts(self):
        config, vm, ms, recolorer = build()
        provoke_conflicts(config, vm, ms, [0, 16, 32])
        taken = vm.physmem.occupy_fraction(1.0, seed=0)
        recolorer.step(0.0)
        assert recolorer.aborted_steps == 1
        for frame in taken:
            vm.physmem.free(frame)
        provoke_conflicts(config, vm, ms, [0, 16, 32])
        events, _ = recolorer.step(0.0)
        assert events  # migration works again once memory is back

    def test_engine_integration(self):
        from repro.machine.config import sgi_base
        from repro.sim.engine import EngineOptions, run_benchmark
        from repro.sim.tracegen import SimProfile

        config = sgi_base(4).scaled(16)
        result = run_benchmark(
            "tomcatv",
            config,
            EngineOptions(
                policy="page_coloring",
                dynamic_recolor=True,
                recolor_threshold=4,
                profile=SimProfile.fast(),
            ),
        )
        assert result.wall_ns > 0  # runs to completion with recoloring on
