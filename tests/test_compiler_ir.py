"""Tests for the loop-nest IR and its validation."""

import pytest

from repro.compiler.ir import (
    ArrayDecl,
    BoundaryAccess,
    Communication,
    InitOrder,
    InstructionStream,
    Loop,
    LoopKind,
    PartitionedAccess,
    Phase,
    Program,
    StridedAccess,
    WholeArrayAccess,
)


def simple_loop(array="a", units=8, **kwargs):
    return Loop("l", LoopKind.PARALLEL, (PartitionedAccess(array, units=units),), **kwargs)


class TestArrayDecl:
    def test_scaled_divides_size(self):
        decl = ArrayDecl("a", 1024)
        assert decl.scaled(4).size_bytes == 256

    def test_scaled_floors_to_element(self):
        decl = ArrayDecl("a", 64, element_size=8)
        assert decl.scaled(100).size_bytes == 8

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            ArrayDecl("a", 0)
        with pytest.raises(ValueError):
            ArrayDecl("a", 10, element_size=8)


class TestAccessValidation:
    def test_partitioned_rejects_zero_units(self):
        with pytest.raises(ValueError):
            PartitionedAccess("a", units=0)

    def test_partitioned_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            PartitionedAccess("a", units=4, fraction=0.0)
        with pytest.raises(ValueError):
            PartitionedAccess("a", units=4, fraction=1.5)

    def test_boundary_requires_communication(self):
        with pytest.raises(ValueError):
            BoundaryAccess("a", units=4, comm=Communication.NONE)

    def test_strided_rejects_subword_block(self):
        with pytest.raises(ValueError):
            StridedAccess("a", block_bytes=4)


class TestLoop:
    def test_effective_iterations_defaults_to_units(self):
        assert simple_loop(units=33).effective_iterations == 33

    def test_explicit_iterations_win(self):
        loop = Loop(
            "l",
            LoopKind.PARALLEL,
            (PartitionedAccess("a", units=8),),
            iterations=50,
        )
        assert loop.effective_iterations == 50

    def test_array_names_deduplicated_in_order(self):
        loop = Loop(
            "l",
            LoopKind.PARALLEL,
            (
                PartitionedAccess("b", units=4),
                PartitionedAccess("a", units=4),
                WholeArrayAccess("b"),
                InstructionStream(footprint_bytes=1024),
            ),
        )
        assert loop.array_names() == ["b", "a"]

    def test_rejects_empty_accesses(self):
        with pytest.raises(ValueError):
            Loop("l", LoopKind.PARALLEL, ())


class TestProgram:
    def arrays(self):
        return (ArrayDecl("a", 1024), ArrayDecl("b", 1024))

    def test_rejects_duplicate_arrays(self):
        with pytest.raises(ValueError):
            Program(
                "p",
                (ArrayDecl("a", 64), ArrayDecl("a", 64)),
                (Phase("ph", (simple_loop(),)),),
            )

    def test_rejects_unknown_array_reference(self):
        with pytest.raises(ValueError):
            Program("p", self.arrays(), (Phase("ph", (simple_loop("zzz"),)),))

    def test_data_set_bytes(self):
        program = Program("p", self.arrays(), (Phase("ph", (simple_loop(),)),))
        assert program.data_set_bytes == 2048

    def test_array_lookup(self):
        program = Program("p", self.arrays(), (Phase("ph", (simple_loop(),)),))
        assert program.array("b").size_bytes == 1024
        with pytest.raises(KeyError):
            program.array("zzz")

    def test_scaled_shrinks_arrays_only(self):
        program = Program("p", self.arrays(), (Phase("ph", (simple_loop(),)),))
        scaled = program.scaled(4)
        assert scaled.array("a").size_bytes == 256
        assert scaled.phases == program.phases
        assert program.scaled(1) is program

    def test_init_groups_default_one_group(self):
        program = Program("p", self.arrays(), (Phase("ph", (simple_loop(),)),))
        assert program.effective_init_groups() == (("a", "b"),)

    def test_init_groups_sequential(self):
        program = Program(
            "p",
            self.arrays(),
            (Phase("ph", (simple_loop(),)),),
            init_order=InitOrder.SEQUENTIAL,
        )
        assert program.effective_init_groups() == (("a",), ("b",))

    def test_explicit_init_groups_win(self):
        program = Program(
            "p",
            self.arrays(),
            (Phase("ph", (simple_loop(),)),),
            init_groups=(("b",), ("a",)),
        )
        assert program.effective_init_groups() == (("b",), ("a",))

    def test_phase_validation(self):
        with pytest.raises(ValueError):
            Phase("ph", ())
        with pytest.raises(ValueError):
            Phase("ph", (simple_loop(),), occurrences=0)
