"""Tests for the sweep helpers and the unscaled-program warning."""

import pytest

from repro.machine.config import sgi_base
from repro.sim.engine import EngineOptions, run_program
from repro.sim.sweeps import (
    STANDARD_POLICIES,
    cpu_sweep,
    policy_sweep,
    speedup_table,
)
from repro.sim.tracegen import SimProfile

FAST = EngineOptions(profile=SimProfile.fast())


class TestPolicySweep:
    def test_standard_policies_labels(self):
        config = sgi_base(2).scaled(16)
        results = policy_sweep("fpppp", config, options=FAST)
        assert set(results) == set(STANDARD_POLICIES)
        assert results["cdpc"].cdpc
        assert results["page_coloring"].policy == "page_coloring"

    def test_custom_policy_set(self):
        config = sgi_base(2).scaled(16)
        results = policy_sweep(
            "fpppp", config,
            policies={"with_pf": {"policy": "page_coloring", "prefetch": True}},
            options=FAST,
        )
        assert list(results) == ["with_pf"]
        assert results["with_pf"].prefetch


class TestCpuSweep:
    def test_sweep_runs_each_count(self):
        results = cpu_sweep(
            "fpppp",
            lambda cpus: sgi_base(cpus).scaled(16),
            cpu_counts=(1, 2),
            options=FAST,
        )
        assert set(results) == {1, 2}
        assert results[2].num_cpus == 2


class TestParallelSweeps:
    def test_policy_sweep_parallel_matches_serial(self):
        config = sgi_base(2).scaled(16)
        serial = policy_sweep("fpppp", config, options=FAST, max_workers=1)
        parallel = policy_sweep("fpppp", config, options=FAST, max_workers=2)
        assert list(serial) == list(parallel)  # deterministic ordering
        for label in serial:
            assert serial[label].to_dict() == parallel[label].to_dict()

    def test_cpu_sweep_parallel_with_lambda_config(self):
        # make_config lambdas never cross the process boundary: configs
        # are materialized in the parent before dispatch.
        results = cpu_sweep(
            "fpppp",
            lambda cpus: sgi_base(cpus).scaled(16),
            cpu_counts=(1, 2),
            options=FAST,
            max_workers=2,
        )
        assert list(results) == [1, 2]
        assert results[2].num_cpus == 2


class TestSpeedupTable:
    def test_relative_to_baseline(self):
        config = sgi_base(4).scaled(16)
        results = policy_sweep("tomcatv", config, options=FAST)
        speedups = speedup_table(results, "page_coloring")
        assert speedups["page_coloring"] == pytest.approx(1.0)
        assert all(value > 0 for value in speedups.values())


class TestUnscaledWarning:
    def test_warns_on_full_size_program_with_scaled_machine(self):
        from repro.workloads import get_workload

        program = get_workload("tomcatv", scale=1).program  # 14MB
        config = sgi_base(2).scaled(16)  # 64KB cache
        import dataclasses

        # Shrink occurrences so the (slow) mis-scaled run stays quick.
        tiny = dataclasses.replace(
            program,
            phases=tuple(
                dataclasses.replace(ph, occurrences=1) for ph in program.phases
            ),
        )
        with pytest.warns(UserWarning, match="did you forget"):
            run_program(tiny, config, FAST)

    def test_no_warning_when_scaled(self, recwarn):
        from repro.workloads import get_workload

        program = get_workload("fpppp", scale=16).program
        config = sgi_base(2).scaled(16)
        run_program(program, config, FAST)
        assert not [w for w in recwarn if "did you forget" in str(w.message)]
