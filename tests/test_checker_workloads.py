"""Linting the bundled SPEC95fp models reproduces the paper's findings.

Expectations at the paper's operating point (16 processors, 1/16 scale):

* every bundled model is free of ERROR findings — the models are
  race-free by construction;
* su2cor's gauge arrays are flagged unsummarizable (C003) — the
  Section 6.1 case where CDPC leaves strided arrays to the OS;
* applu's 33-iteration blocked partitioning on 16 processors is warned
  about (R005, Section 4.1), with idle processors in evidence;
* fpppp (instruction-stream bound, one big whole-array footprint) comes
  back with no findings at all;
* tomcatv and swim lint clean.
"""

from __future__ import annotations

import pytest

from repro.checker import Severity, lint_workload
from repro.machine.config import sgi_base
from repro.workloads.specfp import WORKLOAD_NAMES

CONFIG = sgi_base(16).scaled(16)


@pytest.fixture(scope="module")
def reports():
    return {name: lint_workload(name, CONFIG) for name in WORKLOAD_NAMES}


def test_all_bundled_workloads_are_error_free(reports):
    noisy = {
        name: [d.render() for d in report.errors()]
        for name, report in reports.items()
        if report.errors()
    }
    assert not noisy, f"bundled workloads must lint ERROR-free: {noisy}"


def test_su2cor_strided_arrays_flagged_unsummarizable(reports):
    hits = reports["su2cor"].by_rule("C003")
    flagged = {d.array for d in hits}
    assert {"u1", "u2"} <= flagged
    assert all(d.severity is Severity.WARNING for d in hits)
    # The message must say what CDPC silently did about it.
    assert "default OS placement" in hits[0].message


def test_applu_blocked_imbalance_warned(reports):
    hits = reports["applu"].by_rule("R005")
    assert hits, "applu's 33-on-16 imbalance must be flagged"
    worst = max(hits, key=lambda d: d.evidence["imbalance"])
    assert worst.evidence["imbalance"] >= 0.3
    assert 0 in worst.evidence["counts"], "blocked 33-on-16 idles processors"


def test_fpppp_instruction_stream_lints_silently(reports):
    assert len(reports["fpppp"]) == 0


@pytest.mark.parametrize("name", ["tomcatv", "swim"])
def test_paper_clean_workloads_lint_clean(reports, name):
    report = reports[name]
    assert report.clean, report.render_text()


def test_wave5_strided_push_loops_are_info_only(reports):
    report = reports["wave5"]
    hits = report.by_rule("C003")
    assert hits, "wave5's particle push gathers are strided"
    assert all(d.severity is Severity.INFO for d in hits)
    assert report.clean


def test_reports_render_and_serialize(reports):
    for name, report in reports.items():
        payload = report.to_dict()
        assert payload["program"] == name
        assert payload["num_errors"] == 0
        text = report.render_text()
        assert text.startswith(name)


def test_scaling_does_not_change_the_verdicts():
    """The findings are scale-invariant: 256 colors are preserved."""
    full = lint_workload("applu", sgi_base(16))
    scaled = lint_workload("applu", CONFIG)
    assert sorted(d.rule_id for d in full) == sorted(d.rule_id for d in scaled)
