"""Tests for the access-summary vocabulary."""

import pytest

from repro.common import Communication, Direction
from repro.core.access_summary import (
    AccessSummary,
    ArrayPartitioning,
    CommunicationPattern,
    GroupAccess,
)


def part(start=0, size=4096, unit=256, **kwargs) -> ArrayPartitioning:
    return ArrayPartitioning("a", start, size, unit, **kwargs)


class TestArrayPartitioning:
    def test_units(self):
        assert part().units == 16
        assert part(size=4100).units == 17

    def test_cpu_ranges_even(self):
        ranges = part().cpu_ranges(4)
        assert ranges == [(0, 1024), (1024, 2048), (2048, 3072), (3072, 4096)]

    def test_cpu_ranges_reverse(self):
        ranges = part(direction=Direction.REVERSE).cpu_ranges(4)
        assert ranges[0] == (3072, 4096)

    def test_cpu_ranges_respect_base_address(self):
        ranges = part(start=8192).cpu_ranges(2)
        assert ranges[0] == (8192, 8192 + 2048)

    def test_cpu_ranges_clamped_to_array(self):
        # 17 units of 256 bytes = 4352 > size 4100: last range is clamped.
        ranges = part(size=4100).cpu_ranges(1)
        assert ranges[0] == (0, 4100)

    def test_cpus_for_page(self):
        partitioning = part()  # 4096 bytes
        assert partitioning.cpus_for_page(0, 256, 4) == frozenset({0})
        assert partitioning.cpus_for_page(4, 256, 4) == frozenset({1})
        # A page straddling two partitions belongs to both.
        assert partitioning.cpus_for_page(1, 1536, 4) == frozenset({1, 2})
        # A page outside the array belongs to nobody.
        assert partitioning.cpus_for_page(3, 1536, 4) == frozenset()

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrayPartitioning("a", 0, 0, 1)
        with pytest.raises(ValueError):
            ArrayPartitioning("a", 0, 128, 256)


class TestCommunicationPattern:
    def test_requires_comm_kind(self):
        with pytest.raises(ValueError):
            CommunicationPattern(part(), Communication.NONE)

    def test_shift_neighbours_exclude_ends(self):
        comm = CommunicationPattern(part(), Communication.SHIFT, 256)
        assert comm.neighbour_cpus(0, 4) == [1]
        assert comm.neighbour_cpus(3, 4) == [2]
        assert comm.neighbour_cpus(1, 4) == [0, 2]

    def test_rotate_wraps(self):
        comm = CommunicationPattern(part(), Communication.ROTATE, 256)
        assert sorted(comm.neighbour_cpus(0, 4)) == [1, 3]

    def test_no_neighbours_single_cpu(self):
        comm = CommunicationPattern(part(), Communication.SHIFT, 256)
        assert comm.neighbour_cpus(0, 1) == []

    def test_extra_cpus_for_boundary_page(self):
        comm = CommunicationPattern(part(), Communication.SHIFT, 256)
        # Page 4 (bytes 1024-1279) is the first page of CPU 1's partition;
        # CPU 0 reads that strip.
        assert 0 in comm.extra_cpus_for_page(4, 256, 4)
        # An interior page of CPU 1's partition is not communicated.
        assert comm.extra_cpus_for_page(5, 256, 4) == frozenset()

    def test_zero_boundary_means_no_extras(self):
        comm = CommunicationPattern(part(), Communication.SHIFT, 0)
        assert comm.extra_cpus_for_page(4, 256, 4) == frozenset()


class TestGroupAccessAndSummary:
    def test_group_rejects_self_pair(self):
        with pytest.raises(ValueError):
            GroupAccess("a", "a")

    def test_add_group_deduplicates_unordered(self):
        summary = AccessSummary()
        summary.add_group("a", "b")
        summary.add_group("b", "a")
        summary.add_group("a", "a")
        assert len(summary.groups) == 1
        assert summary.are_grouped("b", "a")

    def test_grouped_with(self):
        summary = AccessSummary()
        summary.add_group("a", "b")
        summary.add_group("a", "c")
        assert summary.grouped_with("a") == {"b", "c"}
        assert summary.grouped_with("b") == {"a"}

    def test_arrays_in_first_seen_order(self):
        summary = AccessSummary(
            partitionings=[
                ArrayPartitioning("b", 0, 1024, 256),
                ArrayPartitioning("a", 4096, 1024, 256),
                ArrayPartitioning("b", 0, 1024, 512),
            ]
        )
        assert summary.arrays() == ["b", "a"]

    def test_merge_deduplicates(self):
        one = AccessSummary(partitionings=[part()])
        two = AccessSummary(partitionings=[part()])
        two.add_group("a", "b")
        merged = one.merge(two)
        assert len(merged.partitionings) == 1
        assert merged.are_grouped("a", "b")
